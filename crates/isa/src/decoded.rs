//! Pre-decoded program side tables for simulator hot paths.
//!
//! The cycle loop in `pim-dpu` needs a handful of facts about the
//! instruction at each tasklet's PC every cycle: which registers it reads
//! (for the forwarding scoreboard), what it writes, its class, and its
//! register-file hazard cost. Re-deriving those from the [`Instruction`]
//! enum per cycle means a `match` plus a `Vec<Reg>` allocation in the
//! innermost loop. A [`DecodedProgram`] is built once at launch and
//! answers all of them with flat-array lookups.

use crate::instr::{InstrClass, Instruction};
use crate::reg::rf_conflict_cycles;

/// Everything the issue/scoreboard path needs to know about one
/// instruction, pre-computed from the [`Instruction`] enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedInstr {
    /// Bit `i` set when `r<i>` is a source ([`Instruction::src_mask`]).
    pub src_mask: u32,
    /// Destination register index, if the instruction writes one.
    pub dst: Option<u8>,
    /// Extra issue slots from same-bank register-file reads. Computed from
    /// the full source *list* — duplicate sources conflict with themselves
    /// even though they collapse to one bit in `src_mask`.
    pub rf_hazard: u8,
    /// Class for instruction-mix accounting.
    pub class: InstrClass,
    /// Blocking MRAM↔WRAM DMA ([`Instruction::is_dma`]).
    pub is_dma: bool,
    /// WRAM load — forwards at load latency rather than ALU latency.
    pub is_load: bool,
}

impl DecodedInstr {
    /// Decodes one instruction.
    #[must_use]
    pub fn new(instr: &Instruction) -> Self {
        DecodedInstr {
            src_mask: instr.src_mask(),
            dst: instr.dst().map(|r| r.index()),
            rf_hazard: instr.rf_hazard_cycles() as u8,
            class: instr.class(),
            is_dma: instr.is_dma(),
            is_load: matches!(instr, Instruction::Load { .. }),
        }
    }
}

/// Per-PC side table over a program's instruction stream, built once at
/// launch and indexed by instruction index in the cycle loop.
#[derive(Debug, Clone, Default)]
pub struct DecodedProgram {
    instrs: Vec<DecodedInstr>,
}

impl DecodedProgram {
    /// Decodes every instruction of a program.
    #[must_use]
    pub fn decode(instrs: &[Instruction]) -> Self {
        DecodedProgram { instrs: instrs.iter().map(DecodedInstr::new).collect() }
    }

    /// The decoded entry at instruction index `pc`, or `None` when the PC
    /// has run off the end of the program (mirrors `instrs.get(pc)` in the
    /// interpreter).
    #[must_use]
    pub fn get(&self, pc: u32) -> Option<&DecodedInstr> {
        self.instrs.get(pc as usize)
    }

    /// Number of decoded instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// Basic-block structure over a program's instruction stream.
///
/// A *leader* starts a block: instruction 0, every static control-transfer
/// target, and every fall-through successor of a control transfer (or of
/// `stop`, which ends a tasklet). `jr` targets are runtime values, but they
/// can only be `jal` link addresses — and the instruction after a `jal` is
/// already a leader — so the static leader set covers every reachable block
/// entry. Blocks are the contiguous half-open spans between leaders.
///
/// The block map is the unit of the launch-time compiler in `pim-dpu`:
/// each block's instructions are compiled together into a span of the flat
/// op table, and `block_of` lets per-block artifacts (op spans, accounting
/// attribution) be looked up from any PC in one flat load.
#[derive(Debug, Clone, Default)]
pub struct BlockMap {
    /// `block_of[pc]` = id of the block containing `pc`.
    block_of: Vec<u32>,
    /// Per-block `[start, end)` instruction-index spans, in program order.
    spans: Vec<(u32, u32)>,
}

impl BlockMap {
    /// Builds the basic-block partition of an instruction stream.
    ///
    /// # Panics
    ///
    /// Panics if the program has more than `u32::MAX` instructions (far
    /// beyond any IRAM).
    #[must_use]
    pub fn build(instrs: &[Instruction]) -> Self {
        let n = instrs.len();
        assert!(u32::try_from(n).is_ok(), "program too large for a block map");
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for (pc, instr) in instrs.iter().enumerate() {
            let target = match *instr {
                Instruction::Branch { target, .. }
                | Instruction::Jump { target }
                | Instruction::Jal { target, .. } => Some(target),
                _ => None,
            };
            if let Some(t) = target {
                if (t as usize) < n {
                    leader[t as usize] = true;
                }
            }
            let ends_block =
                target.is_some() || matches!(instr, Instruction::Jr { .. } | Instruction::Stop);
            if ends_block && pc + 1 < n {
                leader[pc + 1] = true;
            }
        }
        let mut block_of = vec![0u32; n];
        let mut spans: Vec<(u32, u32)> = Vec::new();
        for (pc, &lead) in leader.iter().enumerate() {
            if lead {
                if let Some(last) = spans.last_mut() {
                    last.1 = pc as u32;
                }
                spans.push((pc as u32, n as u32));
            }
            block_of[pc] = (spans.len() - 1) as u32;
        }
        BlockMap { block_of, spans }
    }

    /// The id of the basic block containing instruction index `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is outside the program.
    #[must_use]
    pub fn block_of(&self, pc: u32) -> u32 {
        self.block_of[pc as usize]
    }

    /// The `[start, end)` instruction-index span of block `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    #[must_use]
    pub fn span(&self, block: u32) -> (u32, u32) {
        self.spans[block as usize]
    }

    /// Number of basic blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the program (and hence the block map) is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

/// Debug-build check that a decoded entry agrees with the enum-derived
/// facts (used by the differential tests).
#[must_use]
pub fn decoded_matches(d: &DecodedInstr, instr: &Instruction) -> bool {
    d.src_mask == instr.src_mask()
        && d.dst == instr.dst().map(|r| r.index())
        && u32::from(d.rf_hazard) == rf_conflict_cycles(&instr.srcs())
        && d.class == instr.class()
        && d.is_dma == instr.is_dma()
        && d.is_load == matches!(instr, Instruction::Load { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, Cond, Operand, Width};
    use crate::reg::Reg;

    fn sample_instrs() -> Vec<Instruction> {
        vec![
            Instruction::Alu {
                op: AluOp::Add,
                rd: Reg::r(4),
                ra: Reg::r(1),
                rb: Operand::Reg(Reg::r(2)),
            },
            // Duplicate source: mask has one bit, hazard still 1.
            Instruction::Alu {
                op: AluOp::Mul,
                rd: Reg::r(0),
                ra: Reg::r(6),
                rb: Operand::Reg(Reg::r(6)),
            },
            Instruction::Movi { rd: Reg::r(3), imm: -1 },
            Instruction::Tid { rd: Reg::r(0) },
            Instruction::Load {
                width: Width::Word,
                signed: false,
                rd: Reg::r(5),
                base: Reg::r(7),
                offset: 4,
            },
            Instruction::Store { width: Width::Byte, rs: Reg::r(2), base: Reg::r(9), offset: 0 },
            Instruction::Ldma { wram: Reg::r(0), mram: Reg::r(2), len: Operand::Reg(Reg::r(4)) },
            Instruction::Sdma { wram: Reg::r(1), mram: Reg::r(3), len: Operand::Imm(64) },
            Instruction::Branch { cond: Cond::Ne, ra: Reg::r(1), rb: Operand::Imm(0), target: 0 },
            Instruction::Jump { target: 2 },
            Instruction::Jal { rd: Reg::r(23), target: 1 },
            Instruction::Jr { ra: Reg::r(23) },
            Instruction::Acquire { bit: Operand::Reg(Reg::r(11)) },
            Instruction::Release { bit: Operand::Imm(3) },
            Instruction::Stop,
            Instruction::Nop,
        ]
    }

    #[test]
    fn decode_agrees_with_enum_for_every_shape() {
        let instrs = sample_instrs();
        let prog = DecodedProgram::decode(&instrs);
        assert_eq!(prog.len(), instrs.len());
        for (pc, instr) in instrs.iter().enumerate() {
            let d = prog.get(pc as u32).unwrap();
            assert!(decoded_matches(d, instr), "pc {pc}: {instr} decoded as {d:?}");
        }
        assert!(prog.get(instrs.len() as u32).is_none());
    }

    #[test]
    fn src_mask_matches_srcs_exhaustively() {
        for instr in sample_instrs() {
            let expect = instr.srcs().iter().fold(0u32, |m, r| m | (1 << r.index()));
            assert_eq!(instr.src_mask(), expect, "{instr}");
        }
    }

    #[test]
    fn duplicate_sources_keep_their_hazard() {
        let dup = Instruction::Alu {
            op: AluOp::Add,
            rd: Reg::r(0),
            ra: Reg::r(2),
            rb: Operand::Reg(Reg::r(2)),
        };
        let d = DecodedInstr::new(&dup);
        assert_eq!(d.src_mask.count_ones(), 1);
        assert_eq!(d.rf_hazard, 1, "same-bank self-conflict survives decoding");
    }

    #[test]
    fn empty_program_decodes_empty() {
        let prog = DecodedProgram::decode(&[]);
        assert!(prog.is_empty());
        assert!(prog.get(0).is_none());
    }

    #[test]
    fn block_map_partitions_at_control_transfers() {
        // 0: movi        — leader (entry)
        // 1: branch →4   — ends its block
        // 2: add         — leader (fall-through of branch)
        // 3: jump →0     — ends its block
        // 4: stop        — leader (branch target)
        let instrs = vec![
            Instruction::Movi { rd: Reg::r(0), imm: 1 },
            Instruction::Branch { cond: Cond::Eq, ra: Reg::r(0), rb: Operand::Imm(0), target: 4 },
            Instruction::Alu { op: AluOp::Add, rd: Reg::r(1), ra: Reg::r(0), rb: Operand::Imm(1) },
            Instruction::Jump { target: 0 },
            Instruction::Stop,
        ];
        let map = BlockMap::build(&instrs);
        assert_eq!(map.len(), 3);
        assert_eq!(map.span(0), (0, 2));
        assert_eq!(map.span(1), (2, 4));
        assert_eq!(map.span(2), (4, 5));
        assert_eq!(map.block_of(1), 0);
        assert_eq!(map.block_of(2), 1);
        assert_eq!(map.block_of(4), 2);
    }

    #[test]
    fn block_boundaries_cover_every_shape_in_the_sample() {
        let instrs = sample_instrs();
        let map = BlockMap::build(&instrs);
        assert!(!map.is_empty());
        // Spans tile the program exactly, in order.
        let mut next = 0u32;
        for b in 0..map.len() as u32 {
            let (start, end) = map.span(b);
            assert_eq!(start, next, "block {b} starts where the previous ended");
            assert!(end > start, "block {b} is non-empty");
            for pc in start..end {
                assert_eq!(map.block_of(pc), b);
            }
            next = end;
        }
        assert_eq!(next as usize, instrs.len());
    }

    #[test]
    fn empty_program_has_no_blocks() {
        assert!(BlockMap::build(&[]).is_empty());
    }
}
