//! Pre-decoded program side tables for simulator hot paths.
//!
//! The cycle loop in `pim-dpu` needs a handful of facts about the
//! instruction at each tasklet's PC every cycle: which registers it reads
//! (for the forwarding scoreboard), what it writes, its class, and its
//! register-file hazard cost. Re-deriving those from the [`Instruction`]
//! enum per cycle means a `match` plus a `Vec<Reg>` allocation in the
//! innermost loop. A [`DecodedProgram`] is built once at launch and
//! answers all of them with flat-array lookups.

use crate::instr::{InstrClass, Instruction};
use crate::reg::rf_conflict_cycles;

/// Everything the issue/scoreboard path needs to know about one
/// instruction, pre-computed from the [`Instruction`] enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedInstr {
    /// Bit `i` set when `r<i>` is a source ([`Instruction::src_mask`]).
    pub src_mask: u32,
    /// Destination register index, if the instruction writes one.
    pub dst: Option<u8>,
    /// Extra issue slots from same-bank register-file reads. Computed from
    /// the full source *list* — duplicate sources conflict with themselves
    /// even though they collapse to one bit in `src_mask`.
    pub rf_hazard: u8,
    /// Class for instruction-mix accounting.
    pub class: InstrClass,
    /// Blocking MRAM↔WRAM DMA ([`Instruction::is_dma`]).
    pub is_dma: bool,
    /// WRAM load — forwards at load latency rather than ALU latency.
    pub is_load: bool,
}

impl DecodedInstr {
    /// Decodes one instruction.
    #[must_use]
    pub fn new(instr: &Instruction) -> Self {
        DecodedInstr {
            src_mask: instr.src_mask(),
            dst: instr.dst().map(|r| r.index()),
            rf_hazard: instr.rf_hazard_cycles() as u8,
            class: instr.class(),
            is_dma: instr.is_dma(),
            is_load: matches!(instr, Instruction::Load { .. }),
        }
    }
}

/// Per-PC side table over a program's instruction stream, built once at
/// launch and indexed by instruction index in the cycle loop.
#[derive(Debug, Clone, Default)]
pub struct DecodedProgram {
    instrs: Vec<DecodedInstr>,
}

impl DecodedProgram {
    /// Decodes every instruction of a program.
    #[must_use]
    pub fn decode(instrs: &[Instruction]) -> Self {
        DecodedProgram { instrs: instrs.iter().map(DecodedInstr::new).collect() }
    }

    /// The decoded entry at instruction index `pc`, or `None` when the PC
    /// has run off the end of the program (mirrors `instrs.get(pc)` in the
    /// interpreter).
    #[must_use]
    pub fn get(&self, pc: u32) -> Option<&DecodedInstr> {
        self.instrs.get(pc as usize)
    }

    /// Number of decoded instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// Debug-build check that a decoded entry agrees with the enum-derived
/// facts (used by the differential tests).
#[must_use]
pub fn decoded_matches(d: &DecodedInstr, instr: &Instruction) -> bool {
    d.src_mask == instr.src_mask()
        && d.dst == instr.dst().map(|r| r.index())
        && u32::from(d.rf_hazard) == rf_conflict_cycles(&instr.srcs())
        && d.class == instr.class()
        && d.is_dma == instr.is_dma()
        && d.is_load == matches!(instr, Instruction::Load { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, Cond, Operand, Width};
    use crate::reg::Reg;

    fn sample_instrs() -> Vec<Instruction> {
        vec![
            Instruction::Alu {
                op: AluOp::Add,
                rd: Reg::r(4),
                ra: Reg::r(1),
                rb: Operand::Reg(Reg::r(2)),
            },
            // Duplicate source: mask has one bit, hazard still 1.
            Instruction::Alu {
                op: AluOp::Mul,
                rd: Reg::r(0),
                ra: Reg::r(6),
                rb: Operand::Reg(Reg::r(6)),
            },
            Instruction::Movi { rd: Reg::r(3), imm: -1 },
            Instruction::Tid { rd: Reg::r(0) },
            Instruction::Load {
                width: Width::Word,
                signed: false,
                rd: Reg::r(5),
                base: Reg::r(7),
                offset: 4,
            },
            Instruction::Store { width: Width::Byte, rs: Reg::r(2), base: Reg::r(9), offset: 0 },
            Instruction::Ldma { wram: Reg::r(0), mram: Reg::r(2), len: Operand::Reg(Reg::r(4)) },
            Instruction::Sdma { wram: Reg::r(1), mram: Reg::r(3), len: Operand::Imm(64) },
            Instruction::Branch { cond: Cond::Ne, ra: Reg::r(1), rb: Operand::Imm(0), target: 0 },
            Instruction::Jump { target: 2 },
            Instruction::Jal { rd: Reg::r(23), target: 1 },
            Instruction::Jr { ra: Reg::r(23) },
            Instruction::Acquire { bit: Operand::Reg(Reg::r(11)) },
            Instruction::Release { bit: Operand::Imm(3) },
            Instruction::Stop,
            Instruction::Nop,
        ]
    }

    #[test]
    fn decode_agrees_with_enum_for_every_shape() {
        let instrs = sample_instrs();
        let prog = DecodedProgram::decode(&instrs);
        assert_eq!(prog.len(), instrs.len());
        for (pc, instr) in instrs.iter().enumerate() {
            let d = prog.get(pc as u32).unwrap();
            assert!(decoded_matches(d, instr), "pc {pc}: {instr} decoded as {d:?}");
        }
        assert!(prog.get(instrs.len() as u32).is_none());
    }

    #[test]
    fn src_mask_matches_srcs_exhaustively() {
        for instr in sample_instrs() {
            let expect = instr.srcs().iter().fold(0u32, |m, r| m | (1 << r.index()));
            assert_eq!(instr.src_mask(), expect, "{instr}");
        }
    }

    #[test]
    fn duplicate_sources_keep_their_hazard() {
        let dup = Instruction::Alu {
            op: AluOp::Add,
            rd: Reg::r(0),
            ra: Reg::r(2),
            rb: Operand::Reg(Reg::r(2)),
        };
        let d = DecodedInstr::new(&dup);
        assert_eq!(d.src_mask.count_ones(), 1);
        assert_eq!(d.rf_hazard, 1, "same-bank self-conflict survives decoding");
    }

    #[test]
    fn empty_program_decodes_empty() {
        let prog = DecodedProgram::decode(&[]);
        assert!(prog.is_empty());
        assert!(prog.get(0).is_none());
    }
}
