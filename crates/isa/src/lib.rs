//! # pim-isa
//!
//! The instruction-set architecture of the simulated DPU (DRAM Processing
//! Unit), modelled after UPMEM's commercial general-purpose PIM processor as
//! characterized in *"Pathfinding Future PIM Architectures by Demystifying a
//! Commercial PIM Technology"* (HPCA 2024).
//!
//! The ISA reproduces the microarchitecturally load-bearing properties of the
//! real device:
//!
//! * a per-tasklet register file of 24 general-purpose 32-bit registers,
//!   physically split into an **even** and an **odd** bank (the source of the
//!   structural hazard the paper attributes `Idle(RF)` cycles to);
//! * **scratchpad-centric** memory semantics: `load`/`store` instructions can
//!   only address WRAM (the 64 KB scratchpad); the 64 MB per-bank DRAM
//!   (MRAM) is reachable exclusively through blocking **DMA** instructions;
//! * busy-waiting synchronization through `acquire`/`release` instructions
//!   operating on a 256-bit atomic memory region;
//! * a `stop` instruction terminating the executing tasklet.
//!
//! # Example
//!
//! ```
//! use pim_isa::{Instruction, AluOp, Reg, Operand};
//!
//! let add = Instruction::Alu {
//!     op: AluOp::Add,
//!     rd: Reg::r(2),
//!     ra: Reg::r(0),
//!     rb: Operand::Reg(Reg::r(1)),
//! };
//! let word = add.encode();
//! assert_eq!(Instruction::decode(word).unwrap(), add);
//! assert_eq!(add.to_string(), "add r2, r0, r1");
//! ```

pub mod decoded;
pub mod encode;
pub mod instr;
pub mod layout;
pub mod reg;

pub use decoded::{BlockMap, DecodedInstr, DecodedProgram};
pub use encode::DecodeError;
pub use instr::{AluOp, Cond, InstrClass, Instruction, Operand, Width};
pub use layout::{AddressSpace, MemLayout};
pub use reg::{Reg, RegBank, NUM_GP_REGS};
