//! The DPU's physical memory layout.
//!
//! Mirroring Figure 3(c) of the paper, a DPU addresses four physically
//! distinct memories with **no address translation** (the device has no
//! MMU — the architectural implication explored in the paper's §V-C):
//!
//! * **IRAM** — 24 KB of instruction memory (4096 × 48-bit instructions);
//! * **WRAM** — 64 KB of SRAM scratchpad, the only memory reachable by
//!   load/store instructions;
//! * **MRAM** — the 64 MB DRAM bank, reachable only through DMA;
//! * the **atomic region** — 256 single-bit cells backing
//!   `acquire`/`release`.

use std::fmt;

/// Architectural size of one encoded instruction in IRAM, in bytes.
///
/// The real device packs 48-bit instructions; IRAM capacity accounting uses
/// this size even though the simulator's in-memory encoding is 64-bit.
pub const IRAM_INSTR_BYTES: u32 = 6;

/// One of the DPU's physically distinct address spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressSpace {
    /// Instruction memory.
    Iram,
    /// Scratchpad (working RAM).
    Wram,
    /// Per-bank DRAM (main RAM).
    Mram,
    /// The atomic bit region.
    Atomic,
}

impl fmt::Display for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddressSpace::Iram => write!(f, "IRAM"),
            AddressSpace::Wram => write!(f, "WRAM"),
            AddressSpace::Mram => write!(f, "MRAM"),
            AddressSpace::Atomic => write!(f, "atomic"),
        }
    }
}

/// The capacities of a DPU's memories (paper Table I defaults).
///
/// # Example
///
/// ```
/// use pim_isa::MemLayout;
///
/// let m = MemLayout::default();
/// assert_eq!(m.wram_bytes, 64 * 1024);
/// assert_eq!(m.mram_bytes, 64 * 1024 * 1024);
/// assert_eq!(m.iram_instrs(), 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemLayout {
    /// IRAM capacity in bytes (default 24 KB).
    pub iram_bytes: u32,
    /// WRAM (scratchpad) capacity in bytes (default 64 KB).
    pub wram_bytes: u32,
    /// MRAM (per-bank DRAM) capacity in bytes (default 64 MB).
    pub mram_bytes: u32,
    /// Number of atomic bits (default 256).
    pub atomic_bits: u32,
}

impl MemLayout {
    /// The number of whole instructions that fit in IRAM.
    #[must_use]
    pub fn iram_instrs(&self) -> u32 {
        self.iram_bytes / IRAM_INSTR_BYTES
    }

    /// Checks that a byte access of `len` bytes starting at `addr` lies
    /// entirely inside the given address space.
    #[must_use]
    pub fn contains(&self, space: AddressSpace, addr: u32, len: u32) -> bool {
        let size = match space {
            AddressSpace::Iram => self.iram_bytes,
            AddressSpace::Wram => self.wram_bytes,
            AddressSpace::Mram => self.mram_bytes,
            AddressSpace::Atomic => self.atomic_bits.div_ceil(8),
        };
        u64::from(addr) + u64::from(len) <= u64::from(size)
    }
}

impl Default for MemLayout {
    fn default() -> Self {
        MemLayout {
            iram_bytes: 24 * 1024,
            wram_bytes: 64 * 1024,
            mram_bytes: 64 * 1024 * 1024,
            atomic_bits: 256,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_i() {
        let m = MemLayout::default();
        assert_eq!(m.iram_bytes, 24 * 1024);
        assert_eq!(m.wram_bytes, 64 * 1024);
        assert_eq!(m.mram_bytes, 64 * 1024 * 1024);
        assert_eq!(m.atomic_bits, 256);
        assert_eq!(m.iram_instrs(), 4096);
    }

    #[test]
    fn contains_is_end_exclusive() {
        let m = MemLayout::default();
        assert!(m.contains(AddressSpace::Wram, 0, 64 * 1024));
        assert!(!m.contains(AddressSpace::Wram, 1, 64 * 1024));
        assert!(m.contains(AddressSpace::Wram, 64 * 1024 - 4, 4));
        assert!(!m.contains(AddressSpace::Wram, 64 * 1024, 1));
    }

    #[test]
    fn contains_handles_overflowing_ranges() {
        let m = MemLayout::default();
        assert!(!m.contains(AddressSpace::Mram, u32::MAX, 16));
    }

    #[test]
    fn atomic_region_is_bit_addressed() {
        let m = MemLayout::default();
        // 256 bits = 32 bytes.
        assert!(m.contains(AddressSpace::Atomic, 0, 32));
        assert!(!m.contains(AddressSpace::Atomic, 0, 33));
    }

    #[test]
    fn display_names() {
        assert_eq!(AddressSpace::Iram.to_string(), "IRAM");
        assert_eq!(AddressSpace::Atomic.to_string(), "atomic");
    }
}
