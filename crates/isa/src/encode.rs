//! Binary encoding and decoding of instructions.
//!
//! Each instruction encodes into a single `u64` word (the real device uses a
//! fixed 48-bit encoding; we use 64 bits for field alignment — IRAM capacity
//! accounting uses the architectural 6-byte size, see
//! [`crate::layout::IRAM_INSTR_BYTES`]).
//!
//! Layout (most-significant bits first):
//!
//! ```text
//! 63        56 55   51 50   46 45   41 40    35 34  32 31           0
//! +-----------+-------+-------+-------+--------+------+--------------+
//! |  opcode   |  rd   |  ra   |  rb   |  sub   | rsvd |     imm      |
//! +-----------+-------+-------+-------+--------+------+--------------+
//! ```
//!
//! `Branch` with an immediate comparison operand packs the 16-bit compare
//! immediate in `imm[31:16]` and the 16-bit branch target in `imm[15:0]`.

use std::error::Error;
use std::fmt;

use crate::instr::{AluOp, Cond, Instruction, Operand, Width};
use crate::reg::Reg;

const OP_NOP: u8 = 0;
const OP_STOP: u8 = 1;
const OP_ALU_RR: u8 = 2;
const OP_ALU_RI: u8 = 3;
const OP_MOVI: u8 = 4;
const OP_TID: u8 = 5;
const OP_LOAD: u8 = 6;
const OP_STORE: u8 = 7;
const OP_LDMA_R: u8 = 8;
const OP_LDMA_I: u8 = 9;
const OP_SDMA_R: u8 = 10;
const OP_SDMA_I: u8 = 11;
const OP_BRANCH_RR: u8 = 12;
const OP_BRANCH_RI: u8 = 13;
const OP_JUMP: u8 = 14;
const OP_JAL: u8 = 15;
const OP_JR: u8 = 16;
const OP_ACQUIRE_R: u8 = 17;
const OP_ACQUIRE_I: u8 = 18;
const OP_RELEASE_R: u8 = 19;
const OP_RELEASE_I: u8 = 20;

/// An error produced when decoding an instruction word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode field does not name a known instruction.
    UnknownOpcode(u8),
    /// A register field holds an index outside `0..24`.
    BadRegister(u8),
    /// The `sub` field holds a value invalid for the opcode.
    BadSubfield(u8),
    /// Bits that must be zero were set.
    ReservedBits(u64),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::BadRegister(r) => write!(f, "register index {r} out of range"),
            DecodeError::BadSubfield(s) => write!(f, "invalid sub-field value {s}"),
            DecodeError::ReservedBits(w) => {
                write!(f, "reserved bits set in instruction word {w:#018x}")
            }
        }
    }
}

impl Error for DecodeError {}

fn pack(opcode: u8, rd: u8, ra: u8, rb: u8, sub: u8, imm: u32) -> u64 {
    debug_assert!(rd < 32 && ra < 32 && rb < 32 && sub < 64);
    (u64::from(opcode) << 56)
        | (u64::from(rd) << 51)
        | (u64::from(ra) << 46)
        | (u64::from(rb) << 41)
        | (u64::from(sub) << 35)
        | u64::from(imm)
}

fn field_rd(w: u64) -> u8 {
    ((w >> 51) & 0x1f) as u8
}
fn field_ra(w: u64) -> u8 {
    ((w >> 46) & 0x1f) as u8
}
fn field_rb(w: u64) -> u8 {
    ((w >> 41) & 0x1f) as u8
}
fn field_sub(w: u64) -> u8 {
    ((w >> 35) & 0x3f) as u8
}
fn field_imm(w: u64) -> u32 {
    (w & 0xffff_ffff) as u32
}

fn reg(idx: u8) -> Result<Reg, DecodeError> {
    Reg::try_r(idx).ok_or(DecodeError::BadRegister(idx))
}

fn alu_sub(op: AluOp) -> u8 {
    AluOp::ALL.iter().position(|&o| o == op).expect("op in ALL") as u8
}

fn cond_sub(c: Cond) -> u8 {
    Cond::ALL.iter().position(|&o| o == c).expect("cond in ALL") as u8
}

fn width_sub(w: Width, signed: bool) -> u8 {
    let base = match w {
        Width::Byte => 0,
        Width::Half => 1,
        Width::Word => 2,
    };
    base | (u8::from(signed) << 2)
}

impl Instruction {
    /// Encodes this instruction into its 64-bit binary word.
    ///
    /// # Panics
    ///
    /// Panics if a `Branch` immediate comparison operand does not fit `i16`,
    /// if a `Branch`-with-immediate target does not fit `u16`, or if an
    /// `Acquire`/`Release` immediate bit index is outside `0..256`. (The
    /// assembler and kernel builder validate these before construction.)
    #[must_use]
    pub fn encode(&self) -> u64 {
        match *self {
            Instruction::Nop => pack(OP_NOP, 0, 0, 0, 0, 0),
            Instruction::Stop => pack(OP_STOP, 0, 0, 0, 0, 0),
            Instruction::Alu { op, rd, ra, rb } => match rb {
                Operand::Reg(rb) => {
                    pack(OP_ALU_RR, rd.index(), ra.index(), rb.index(), alu_sub(op), 0)
                }
                Operand::Imm(imm) => {
                    pack(OP_ALU_RI, rd.index(), ra.index(), 0, alu_sub(op), imm as u32)
                }
            },
            Instruction::Movi { rd, imm } => pack(OP_MOVI, rd.index(), 0, 0, 0, imm as u32),
            Instruction::Tid { rd } => pack(OP_TID, rd.index(), 0, 0, 0, 0),
            Instruction::Load { width, signed, rd, base, offset } => pack(
                OP_LOAD,
                rd.index(),
                base.index(),
                0,
                width_sub(width, signed && width != Width::Word),
                offset as u32,
            ),
            Instruction::Store { width, rs, base, offset } => {
                pack(OP_STORE, 0, base.index(), rs.index(), width_sub(width, false), offset as u32)
            }
            Instruction::Ldma { wram, mram, len } => match len {
                Operand::Reg(r) => pack(OP_LDMA_R, r.index(), wram.index(), mram.index(), 0, 0),
                Operand::Imm(n) => pack(OP_LDMA_I, 0, wram.index(), mram.index(), 0, n as u32),
            },
            Instruction::Sdma { wram, mram, len } => match len {
                Operand::Reg(r) => pack(OP_SDMA_R, r.index(), wram.index(), mram.index(), 0, 0),
                Operand::Imm(n) => pack(OP_SDMA_I, 0, wram.index(), mram.index(), 0, n as u32),
            },
            Instruction::Branch { cond, ra, rb, target } => match rb {
                Operand::Reg(rb) => {
                    pack(OP_BRANCH_RR, 0, ra.index(), rb.index(), cond_sub(cond), target)
                }
                Operand::Imm(imm) => {
                    let imm16 = i16::try_from(imm).expect("branch immediate operand must fit i16");
                    let target16 =
                        u16::try_from(target).expect("branch-with-immediate target must fit u16");
                    pack(
                        OP_BRANCH_RI,
                        0,
                        ra.index(),
                        0,
                        cond_sub(cond),
                        (u32::from(imm16 as u16) << 16) | u32::from(target16),
                    )
                }
            },
            Instruction::Jump { target } => pack(OP_JUMP, 0, 0, 0, 0, target),
            Instruction::Jal { rd, target } => pack(OP_JAL, rd.index(), 0, 0, 0, target),
            Instruction::Jr { ra } => pack(OP_JR, 0, ra.index(), 0, 0, 0),
            Instruction::Acquire { bit } => match bit {
                Operand::Reg(r) => pack(OP_ACQUIRE_R, 0, r.index(), 0, 0, 0),
                Operand::Imm(b) => {
                    assert!((0..256).contains(&b), "atomic bit index must be in 0..256");
                    pack(OP_ACQUIRE_I, 0, 0, 0, 0, b as u32)
                }
            },
            Instruction::Release { bit } => match bit {
                Operand::Reg(r) => pack(OP_RELEASE_R, 0, r.index(), 0, 0, 0),
                Operand::Imm(b) => {
                    assert!((0..256).contains(&b), "atomic bit index must be in 0..256");
                    pack(OP_RELEASE_I, 0, 0, 0, 0, b as u32)
                }
            },
        }
    }

    /// Decodes a 64-bit instruction word.
    ///
    /// Word-width loads decode with `signed == false` regardless of the
    /// encoded sign bit (sign extension is meaningless at full width).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the opcode is unknown, a register field
    /// is out of range, a sub-field is invalid, or reserved bits are set.
    pub fn decode(word: u64) -> Result<Instruction, DecodeError> {
        let opcode = (word >> 56) as u8;
        let (rd, ra, rb, sub, imm) =
            (field_rd(word), field_ra(word), field_rb(word), field_sub(word), field_imm(word));
        // Bits 32..35 are reserved in every format.
        if (word >> 32) & 0b111 != 0 {
            return Err(DecodeError::ReservedBits(word));
        }
        let alu_op =
            |sub: u8| AluOp::ALL.get(sub as usize).copied().ok_or(DecodeError::BadSubfield(sub));
        let cond =
            |sub: u8| Cond::ALL.get(sub as usize).copied().ok_or(DecodeError::BadSubfield(sub));
        let width = |sub: u8| match sub & 0b11 {
            0 => Ok(Width::Byte),
            1 => Ok(Width::Half),
            2 => Ok(Width::Word),
            _ => Err(DecodeError::BadSubfield(sub)),
        };
        Ok(match opcode {
            OP_NOP => Instruction::Nop,
            OP_STOP => Instruction::Stop,
            OP_ALU_RR => Instruction::Alu {
                op: alu_op(sub)?,
                rd: reg(rd)?,
                ra: reg(ra)?,
                rb: Operand::Reg(reg(rb)?),
            },
            OP_ALU_RI => Instruction::Alu {
                op: alu_op(sub)?,
                rd: reg(rd)?,
                ra: reg(ra)?,
                rb: Operand::Imm(imm as i32),
            },
            OP_MOVI => Instruction::Movi { rd: reg(rd)?, imm: imm as i32 },
            OP_TID => Instruction::Tid { rd: reg(rd)? },
            OP_LOAD => {
                let w = width(sub)?;
                if sub > 0b111 {
                    return Err(DecodeError::BadSubfield(sub));
                }
                Instruction::Load {
                    width: w,
                    signed: (sub & 0b100) != 0 && w != Width::Word,
                    rd: reg(rd)?,
                    base: reg(ra)?,
                    offset: imm as i32,
                }
            }
            OP_STORE => Instruction::Store {
                width: width(sub)?,
                rs: reg(rb)?,
                base: reg(ra)?,
                offset: imm as i32,
            },
            OP_LDMA_R => {
                Instruction::Ldma { wram: reg(ra)?, mram: reg(rb)?, len: Operand::Reg(reg(rd)?) }
            }
            OP_LDMA_I => {
                Instruction::Ldma { wram: reg(ra)?, mram: reg(rb)?, len: Operand::Imm(imm as i32) }
            }
            OP_SDMA_R => {
                Instruction::Sdma { wram: reg(ra)?, mram: reg(rb)?, len: Operand::Reg(reg(rd)?) }
            }
            OP_SDMA_I => {
                Instruction::Sdma { wram: reg(ra)?, mram: reg(rb)?, len: Operand::Imm(imm as i32) }
            }
            OP_BRANCH_RR => Instruction::Branch {
                cond: cond(sub)?,
                ra: reg(ra)?,
                rb: Operand::Reg(reg(rb)?),
                target: imm,
            },
            OP_BRANCH_RI => Instruction::Branch {
                cond: cond(sub)?,
                ra: reg(ra)?,
                rb: Operand::Imm(((imm >> 16) as u16 as i16) as i32),
                target: imm & 0xffff,
            },
            OP_JUMP => Instruction::Jump { target: imm },
            OP_JAL => Instruction::Jal { rd: reg(rd)?, target: imm },
            OP_JR => Instruction::Jr { ra: reg(ra)? },
            OP_ACQUIRE_R => Instruction::Acquire { bit: Operand::Reg(reg(ra)?) },
            OP_ACQUIRE_I => Instruction::Acquire { bit: Operand::Imm(imm as i32) },
            OP_RELEASE_R => Instruction::Release { bit: Operand::Reg(reg(ra)?) },
            OP_RELEASE_I => Instruction::Release { bit: Operand::Imm(imm as i32) },
            other => return Err(DecodeError::UnknownOpcode(other)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(i: Instruction) {
        let w = i.encode();
        let back = Instruction::decode(w).unwrap_or_else(|e| panic!("decode {i}: {e}"));
        assert_eq!(back, i, "round trip of {i}");
    }

    #[test]
    fn round_trip_representative_instructions() {
        let r = Reg::r;
        for i in [
            Instruction::Nop,
            Instruction::Stop,
            Instruction::Alu { op: AluOp::Add, rd: r(0), ra: r(1), rb: Operand::Reg(r(2)) },
            Instruction::Alu { op: AluOp::Max, rd: r(23), ra: r(22), rb: Operand::Imm(-100) },
            Instruction::Movi { rd: r(5), imm: i32::MIN },
            Instruction::Movi { rd: r(5), imm: i32::MAX },
            Instruction::Tid { rd: r(9) },
            Instruction::Load {
                width: Width::Byte,
                signed: true,
                rd: r(1),
                base: r(2),
                offset: -64,
            },
            Instruction::Load {
                width: Width::Word,
                signed: false,
                rd: r(1),
                base: r(2),
                offset: 1024,
            },
            Instruction::Store { width: Width::Half, rs: r(3), base: r(4), offset: 2 },
            Instruction::Ldma { wram: r(1), mram: r(2), len: Operand::Imm(2048) },
            Instruction::Ldma { wram: r(1), mram: r(2), len: Operand::Reg(r(3)) },
            Instruction::Sdma { wram: r(4), mram: r(5), len: Operand::Imm(8) },
            Instruction::Sdma { wram: r(4), mram: r(5), len: Operand::Reg(r(6)) },
            Instruction::Branch { cond: Cond::Eq, ra: r(0), rb: Operand::Reg(r(1)), target: 4095 },
            Instruction::Branch {
                cond: Cond::Geu,
                ra: r(7),
                rb: Operand::Imm(-32768),
                target: 65535,
            },
            Instruction::Jump { target: 12 },
            Instruction::Jal { rd: r(23), target: 100 },
            Instruction::Jr { ra: r(23) },
            Instruction::Acquire { bit: Operand::Imm(255) },
            Instruction::Acquire { bit: Operand::Reg(r(2)) },
            Instruction::Release { bit: Operand::Imm(0) },
            Instruction::Release { bit: Operand::Reg(r(2)) },
        ] {
            round_trip(i);
        }
    }

    #[test]
    fn word_load_sign_bit_normalized() {
        // Hand-craft a word-width load with the sign bit set: it must decode
        // with signed == false.
        let i = Instruction::Load {
            width: Width::Word,
            signed: false,
            rd: Reg::r(1),
            base: Reg::r(2),
            offset: 0,
        };
        let w = i.encode() | (0b100 << 35);
        assert_eq!(Instruction::decode(w).unwrap(), i);
    }

    #[test]
    fn decode_rejects_unknown_opcode() {
        assert!(matches!(Instruction::decode(0xff << 56), Err(DecodeError::UnknownOpcode(0xff))));
    }

    #[test]
    fn decode_rejects_bad_register() {
        // ALU_RR with rd = 30.
        let w = (u64::from(OP_ALU_RR) << 56) | (30u64 << 51);
        assert!(matches!(Instruction::decode(w), Err(DecodeError::BadRegister(30))));
    }

    #[test]
    fn decode_rejects_bad_subfield() {
        // ALU_RR with sub = 63 (no such ALU op).
        let w = (u64::from(OP_ALU_RR) << 56) | (63u64 << 35);
        assert!(matches!(Instruction::decode(w), Err(DecodeError::BadSubfield(63))));
    }

    #[test]
    fn decode_rejects_reserved_bits() {
        let w = Instruction::Nop.encode() | (1 << 33);
        assert!(matches!(Instruction::decode(w), Err(DecodeError::ReservedBits(_))));
    }

    #[test]
    #[should_panic(expected = "must fit i16")]
    fn branch_immediate_overflow_panics() {
        let i = Instruction::Branch {
            cond: Cond::Eq,
            ra: Reg::r(0),
            rb: Operand::Imm(70000),
            target: 0,
        };
        let _ = i.encode();
    }

    #[test]
    #[should_panic(expected = "atomic bit index")]
    fn acquire_bit_overflow_panics() {
        let _ = Instruction::Acquire { bit: Operand::Imm(256) }.encode();
    }
}
