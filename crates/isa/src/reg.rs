//! General-purpose registers and the even/odd register-file banks.
//!
//! The DPU register file holds [`NUM_GP_REGS`] 32-bit registers per tasklet.
//! Physically the file is split into an *even* bank (`r0, r2, …`) and an
//! *odd* bank (`r1, r3, …`); each bank has a single read port, so an
//! instruction whose source operands fall into the same bank suffers a
//! structural hazard (see the paper, §II-A).

use std::fmt;

/// Number of general-purpose registers available to each tasklet.
pub const NUM_GP_REGS: u8 = 24;

/// A general-purpose register identifier (`r0` … `r23`).
///
/// # Example
///
/// ```
/// use pim_isa::{Reg, RegBank};
///
/// let r5 = Reg::r(5);
/// assert_eq!(r5.index(), 5);
/// assert_eq!(r5.bank(), RegBank::Odd);
/// assert_eq!(r5.to_string(), "r5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Creates the register with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_GP_REGS` (24).
    #[must_use]
    pub fn r(index: u8) -> Self {
        assert!(index < NUM_GP_REGS, "register index {index} out of range (0..{NUM_GP_REGS})");
        Reg(index)
    }

    /// Fallible constructor; returns `None` if `index` is out of range.
    #[must_use]
    pub fn try_r(index: u8) -> Option<Self> {
        (index < NUM_GP_REGS).then_some(Reg(index))
    }

    /// The register's index within the file (0..24).
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Which physical register-file bank this register lives in.
    #[must_use]
    pub fn bank(self) -> RegBank {
        if self.0.is_multiple_of(2) {
            RegBank::Even
        } else {
            RegBank::Odd
        }
    }

    /// Iterates over all general-purpose registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_GP_REGS).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The physical bank a register belongs to.
///
/// The baseline DPU can read at most one register from each bank per cycle;
/// two same-bank sources cost an extra issue-slot (the `Idle(RF)` component
/// of the paper's Figure 6). The `R` ILP extension (unified register file
/// with doubled read bandwidth) removes the hazard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegBank {
    /// Registers with an even index: `r0, r2, …, r22`.
    Even,
    /// Registers with an odd index: `r1, r3, …, r23`.
    Odd,
}

impl fmt::Display for RegBank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegBank::Even => write!(f, "even"),
            RegBank::Odd => write!(f, "odd"),
        }
    }
}

/// Counts the extra register-file read cycles an instruction with the given
/// source registers incurs on the split even/odd register file.
///
/// Each bank can serve one read per cycle; every same-bank source beyond the
/// first adds one structural-hazard cycle.
///
/// # Example
///
/// ```
/// use pim_isa::reg::{rf_conflict_cycles, Reg};
///
/// // r0 and r2 are both in the even bank: one extra cycle.
/// assert_eq!(rf_conflict_cycles(&[Reg::r(0), Reg::r(2)]), 1);
/// // r0 and r1 are in different banks: no hazard.
/// assert_eq!(rf_conflict_cycles(&[Reg::r(0), Reg::r(1)]), 0);
/// // Three even sources: two extra cycles.
/// assert_eq!(rf_conflict_cycles(&[Reg::r(0), Reg::r(2), Reg::r(4)]), 2);
/// ```
#[must_use]
pub fn rf_conflict_cycles(srcs: &[Reg]) -> u32 {
    let even = srcs.iter().filter(|r| r.bank() == RegBank::Even).count() as u32;
    let odd = srcs.len() as u32 - even;
    even.saturating_sub(1) + odd.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_banks_alternate() {
        for i in 0..NUM_GP_REGS {
            let expected = if i % 2 == 0 { RegBank::Even } else { RegBank::Odd };
            assert_eq!(Reg::r(i).bank(), expected, "r{i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range_panics() {
        let _ = Reg::r(24);
    }

    #[test]
    fn try_r_bounds() {
        assert_eq!(Reg::try_r(23), Some(Reg::r(23)));
        assert_eq!(Reg::try_r(24), None);
    }

    #[test]
    fn all_yields_every_register_once() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), NUM_GP_REGS as usize);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.index() as usize, i);
        }
    }

    #[test]
    fn conflict_cycles_empty_and_single() {
        assert_eq!(rf_conflict_cycles(&[]), 0);
        assert_eq!(rf_conflict_cycles(&[Reg::r(7)]), 0);
    }

    #[test]
    fn conflict_cycles_mixed_three_sources() {
        // two odd + one even: one extra cycle for the odd pair.
        assert_eq!(rf_conflict_cycles(&[Reg::r(1), Reg::r(3), Reg::r(2)]), 1);
    }

    #[test]
    fn display_format() {
        assert_eq!(Reg::r(0).to_string(), "r0");
        assert_eq!(Reg::r(23).to_string(), "r23");
        assert_eq!(RegBank::Even.to_string(), "even");
        assert_eq!(RegBank::Odd.to_string(), "odd");
    }
}
