//! Instruction definitions, operand kinds, and instruction classification.
//!
//! The instruction set follows the shape of UPMEM's RISC ISA as described in
//! the paper (§II): scalar 32-bit ALU operations, WRAM-only loads/stores,
//! blocking DMA transfers between MRAM and WRAM, branches, and
//! `acquire`/`release` synchronization on the atomic memory region.

use std::fmt;

use crate::reg::{rf_conflict_cycles, Reg};

/// Arithmetic/logic operations available to [`Instruction::Alu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `rd = ra + rb`
    Add,
    /// `rd = ra - rb`
    Sub,
    /// `rd = ra & rb`
    And,
    /// `rd = ra | rb`
    Or,
    /// `rd = ra ^ rb`
    Xor,
    /// `rd = ra << (rb & 31)`
    Sll,
    /// `rd = (ra as u32) >> (rb & 31)`
    Srl,
    /// `rd = (ra as i32) >> (rb & 31)`
    Sra,
    /// `rd = low 32 bits of ra * rb`
    Mul,
    /// `rd = ra / rb` (signed; `rb == 0` yields 0, `MIN / -1` yields `MIN`)
    Div,
    /// `rd = ra % rb` (signed; `rb == 0` yields `ra`)
    Rem,
    /// `rd = (ra as i32) < (rb as i32)`
    Slt,
    /// `rd = (ra as u32) < (rb as u32)`
    Sltu,
    /// `rd = min(ra, rb)` (signed)
    Min,
    /// `rd = max(ra, rb)` (signed)
    Max,
}

impl AluOp {
    /// All ALU operations, in encoding order.
    pub const ALL: [AluOp; 15] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Min,
        AluOp::Max,
    ];

    /// The assembly mnemonic for this operation.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Min => "min",
            AluOp::Max => "max",
        }
    }

    /// Evaluates the operation on two 32-bit values.
    ///
    /// Division follows the conventions documented on [`AluOp::Div`] and
    /// [`AluOp::Rem`] so that execution can never trap.
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> u32 {
        let (sa, sb) = (a as i32, b as i32);
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => (sa.wrapping_shr(b & 31)) as u32,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if sb == 0 {
                    0
                } else {
                    sa.wrapping_div(sb) as u32
                }
            }
            AluOp::Rem => {
                if sb == 0 {
                    a
                } else {
                    sa.wrapping_rem(sb) as u32
                }
            }
            AluOp::Slt => u32::from(sa < sb),
            AluOp::Sltu => u32::from(a < b),
            AluOp::Min => sa.min(sb) as u32,
            AluOp::Max => sa.max(sb) as u32,
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Branch conditions for [`Instruction::Branch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// `ra == rb`
    Eq,
    /// `ra != rb`
    Ne,
    /// `(ra as i32) < (rb as i32)`
    Lt,
    /// `(ra as i32) >= (rb as i32)`
    Ge,
    /// `(ra as u32) < (rb as u32)`
    Ltu,
    /// `(ra as u32) >= (rb as u32)`
    Geu,
}

impl Cond {
    /// All branch conditions, in encoding order.
    pub const ALL: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu];

    /// The assembly mnemonic (`beq`, `bne`, …).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Ge => "bge",
            Cond::Ltu => "bltu",
            Cond::Geu => "bgeu",
        }
    }

    /// Evaluates the condition.
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i32) < (b as i32),
            Cond::Ge => (a as i32) >= (b as i32),
            Cond::Ltu => a < b,
            Cond::Geu => a >= b,
        }
    }

    /// The condition with operands swapped-and-negated semantics preserved,
    /// i.e. `cond.eval(a, b) == cond.inverse().eval(a, b) == false` never
    /// both hold.
    #[must_use]
    pub fn inverse(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Ltu => Cond::Geu,
            Cond::Geu => Cond::Ltu,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Access width for WRAM loads and stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 1 byte.
    Byte,
    /// 2 bytes.
    Half,
    /// 4 bytes.
    Word,
}

impl Width {
    /// The access size in bytes.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            Width::Byte => 1,
            Width::Half => 2,
            Width::Word => 4,
        }
    }
}

/// A register-or-immediate operand.
///
/// # Example
///
/// ```
/// use pim_isa::{Operand, Reg};
///
/// assert_eq!(Operand::Reg(Reg::r(3)).to_string(), "r3");
/// assert_eq!(Operand::Imm(-7).to_string(), "-7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// The value of a general-purpose register.
    Reg(Reg),
    /// A sign-extended immediate.
    Imm(i32),
}

impl Operand {
    /// The register, if this operand is a register.
    #[must_use]
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i32> for Operand {
    fn from(imm: i32) -> Self {
        Operand::Imm(imm)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

/// Instruction classes used for the paper's instruction-mix analysis (Fig 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// ALU operations, immediates, tasklet-id reads.
    Arithmetic,
    /// WRAM (scratchpad) loads and stores.
    LoadStore,
    /// MRAM↔WRAM DMA transfers.
    Dma,
    /// Branches, jumps, calls, indirect jumps.
    Control,
    /// `acquire`/`release` on the atomic region.
    Sync,
    /// `nop`, `stop`.
    Other,
}

impl InstrClass {
    /// All instruction classes, in reporting order.
    pub const ALL: [InstrClass; 6] = [
        InstrClass::Arithmetic,
        InstrClass::LoadStore,
        InstrClass::Dma,
        InstrClass::Control,
        InstrClass::Sync,
        InstrClass::Other,
    ];

    /// Short label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            InstrClass::Arithmetic => "arith",
            InstrClass::LoadStore => "ldst",
            InstrClass::Dma => "dma",
            InstrClass::Control => "ctrl",
            InstrClass::Sync => "sync",
            InstrClass::Other => "other",
        }
    }
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A single DPU instruction.
///
/// Branch and jump targets are absolute IRAM *instruction indices* (the DPU
/// program counter advances by whole instructions, mirroring the fixed-width
/// 48-bit encoding of the real device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// ALU operation: `rd = op(ra, rb)`.
    Alu {
        /// Operation to perform.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        ra: Reg,
        /// Second source (register or immediate).
        rb: Operand,
    },
    /// Load a full 32-bit immediate: `rd = imm`.
    Movi {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: i32,
    },
    /// Read the executing tasklet's id: `rd = tasklet_id`.
    Tid {
        /// Destination register.
        rd: Reg,
    },
    /// WRAM load: `rd = wram[base + offset]`.
    Load {
        /// Access width.
        width: Width,
        /// Sign-extend sub-word loads (canonically `false` for [`Width::Word`]).
        signed: bool,
        /// Destination register.
        rd: Reg,
        /// Base address register (WRAM byte address).
        base: Reg,
        /// Byte offset added to the base.
        offset: i32,
    },
    /// WRAM store: `wram[base + offset] = rs`.
    Store {
        /// Access width.
        width: Width,
        /// Source register providing the stored value.
        rs: Reg,
        /// Base address register (WRAM byte address).
        base: Reg,
        /// Byte offset added to the base.
        offset: i32,
    },
    /// Blocking DMA read `MRAM → WRAM` (the SDK's `mram_read`).
    ///
    /// Transfers `len` bytes from the MRAM byte address in `mram` to the WRAM
    /// byte address in `wram`. The issuing tasklet blocks until completion.
    Ldma {
        /// Register holding the destination WRAM byte address.
        wram: Reg,
        /// Register holding the source MRAM byte address.
        mram: Reg,
        /// Transfer length in bytes (register or immediate).
        len: Operand,
    },
    /// Blocking DMA write `WRAM → MRAM` (the SDK's `mram_write`).
    Sdma {
        /// Register holding the source WRAM byte address.
        wram: Reg,
        /// Register holding the destination MRAM byte address.
        mram: Reg,
        /// Transfer length in bytes (register or immediate).
        len: Operand,
    },
    /// Conditional branch to the absolute instruction index `target`.
    Branch {
        /// Condition evaluated on `ra` and `rb`.
        cond: Cond,
        /// First comparison source.
        ra: Reg,
        /// Second comparison source (register, or immediate fitting `i16`).
        rb: Operand,
        /// Absolute IRAM instruction index to branch to when taken.
        target: u32,
    },
    /// Unconditional jump to the absolute instruction index `target`.
    Jump {
        /// Absolute IRAM instruction index.
        target: u32,
    },
    /// Call: `rd = pc + 1; pc = target`.
    Jal {
        /// Link register receiving the return address.
        rd: Reg,
        /// Absolute IRAM instruction index of the callee.
        target: u32,
    },
    /// Indirect jump: `pc = ra` (used for returns).
    Jr {
        /// Register holding the target instruction index.
        ra: Reg,
    },
    /// Acquire an atomic bit (test-and-set). If the bit is already set the
    /// instruction *retries*: the tasklet busy-waits, re-issuing `acquire`
    /// and consuming pipeline slots — the behaviour behind the paper's
    /// observation that `HST-L`/`TRNS` waste runtime on lock acquisition.
    Acquire {
        /// Atomic-bit index (register or immediate, 0..256).
        bit: Operand,
    },
    /// Release an atomic bit (clear).
    Release {
        /// Atomic-bit index (register or immediate, 0..256).
        bit: Operand,
    },
    /// Terminate the executing tasklet.
    Stop,
    /// No operation.
    Nop,
}

impl Instruction {
    /// The instruction class for instruction-mix accounting (paper Fig 9).
    #[must_use]
    pub fn class(&self) -> InstrClass {
        match self {
            Instruction::Alu { .. } | Instruction::Movi { .. } | Instruction::Tid { .. } => {
                InstrClass::Arithmetic
            }
            Instruction::Load { .. } | Instruction::Store { .. } => InstrClass::LoadStore,
            Instruction::Ldma { .. } | Instruction::Sdma { .. } => InstrClass::Dma,
            Instruction::Branch { .. }
            | Instruction::Jump { .. }
            | Instruction::Jal { .. }
            | Instruction::Jr { .. } => InstrClass::Control,
            Instruction::Acquire { .. } | Instruction::Release { .. } => InstrClass::Sync,
            Instruction::Stop | Instruction::Nop => InstrClass::Other,
        }
    }

    /// Source registers read by this instruction, in operand order.
    #[must_use]
    pub fn srcs(&self) -> Vec<Reg> {
        let mut out = Vec::with_capacity(3);
        match *self {
            Instruction::Alu { ra, rb, .. } => {
                out.push(ra);
                if let Operand::Reg(r) = rb {
                    out.push(r);
                }
            }
            Instruction::Load { base, .. } => out.push(base),
            Instruction::Store { rs, base, .. } => {
                out.push(rs);
                out.push(base);
            }
            Instruction::Ldma { wram, mram, len } | Instruction::Sdma { wram, mram, len } => {
                out.push(wram);
                out.push(mram);
                if let Operand::Reg(r) = len {
                    out.push(r);
                }
            }
            Instruction::Branch { ra, rb, .. } => {
                out.push(ra);
                if let Operand::Reg(r) = rb {
                    out.push(r);
                }
            }
            Instruction::Jr { ra } => out.push(ra),
            Instruction::Acquire { bit } | Instruction::Release { bit } => {
                if let Operand::Reg(r) = bit {
                    out.push(r);
                }
            }
            Instruction::Movi { .. }
            | Instruction::Tid { .. }
            | Instruction::Jump { .. }
            | Instruction::Jal { .. }
            | Instruction::Stop
            | Instruction::Nop => {}
        }
        out
    }

    /// Bitmask of source registers read by this instruction: bit `i` is set
    /// when `r<i>` appears in [`Instruction::srcs`].
    ///
    /// Allocation-free companion to `srcs()` for hot-path scoreboard checks.
    /// Duplicate sources collapse to a single bit, so register-file conflict
    /// accounting must keep using [`Instruction::rf_hazard_cycles`] (e.g.
    /// `add r0, r0, r0` has two even-bank reads but a one-bit mask).
    #[must_use]
    pub fn src_mask(&self) -> u32 {
        let bit = |r: Reg| 1u32 << r.index();
        let op_bit = |o: Operand| o.as_reg().map_or(0, bit);
        match *self {
            Instruction::Alu { ra, rb, .. } | Instruction::Branch { ra, rb, .. } => {
                bit(ra) | op_bit(rb)
            }
            Instruction::Load { base, .. } => bit(base),
            Instruction::Store { rs, base, .. } => bit(rs) | bit(base),
            Instruction::Ldma { wram, mram, len } | Instruction::Sdma { wram, mram, len } => {
                bit(wram) | bit(mram) | op_bit(len)
            }
            Instruction::Jr { ra } => bit(ra),
            Instruction::Acquire { bit: b } | Instruction::Release { bit: b } => op_bit(b),
            Instruction::Movi { .. }
            | Instruction::Tid { .. }
            | Instruction::Jump { .. }
            | Instruction::Jal { .. }
            | Instruction::Stop
            | Instruction::Nop => 0,
        }
    }

    /// The destination register written by this instruction, if any.
    #[must_use]
    pub fn dst(&self) -> Option<Reg> {
        match *self {
            Instruction::Alu { rd, .. }
            | Instruction::Movi { rd, .. }
            | Instruction::Tid { rd }
            | Instruction::Load { rd, .. }
            | Instruction::Jal { rd, .. } => Some(rd),
            _ => None,
        }
    }

    /// Extra register-file read cycles incurred by this instruction on the
    /// split even/odd register file (see [`crate::reg::rf_conflict_cycles`]).
    #[must_use]
    pub fn rf_hazard_cycles(&self) -> u32 {
        rf_conflict_cycles(&self.srcs())
    }

    /// Whether this is a control-transfer instruction.
    #[must_use]
    pub fn is_control(&self) -> bool {
        self.class() == InstrClass::Control
    }

    /// Whether this instruction blocks the tasklet on the memory system
    /// (DMA transfers in the baseline scratchpad-centric model).
    #[must_use]
    pub fn is_dma(&self) -> bool {
        matches!(self, Instruction::Ldma { .. } | Instruction::Sdma { .. })
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::Alu { op, rd, ra, rb } => write!(f, "{op} {rd}, {ra}, {rb}"),
            Instruction::Movi { rd, imm } => write!(f, "movi {rd}, {imm}"),
            Instruction::Tid { rd } => write!(f, "tid {rd}"),
            Instruction::Load { width, signed, rd, base, offset } => {
                let m = match (width, signed) {
                    (Width::Byte, false) => "lbu",
                    (Width::Byte, true) => "lb",
                    (Width::Half, false) => "lhu",
                    (Width::Half, true) => "lh",
                    (Width::Word, _) => "lw",
                };
                write!(f, "{m} {rd}, {offset}({base})")
            }
            Instruction::Store { width, rs, base, offset } => {
                let m = match width {
                    Width::Byte => "sb",
                    Width::Half => "sh",
                    Width::Word => "sw",
                };
                write!(f, "{m} {rs}, {offset}({base})")
            }
            Instruction::Ldma { wram, mram, len } => write!(f, "ldma {wram}, {mram}, {len}"),
            Instruction::Sdma { wram, mram, len } => write!(f, "sdma {wram}, {mram}, {len}"),
            Instruction::Branch { cond, ra, rb, target } => {
                write!(f, "{cond} {ra}, {rb}, {target}")
            }
            Instruction::Jump { target } => write!(f, "jump {target}"),
            Instruction::Jal { rd, target } => write!(f, "jal {rd}, {target}"),
            Instruction::Jr { ra } => write!(f, "jr {ra}"),
            Instruction::Acquire { bit } => write!(f, "acquire {bit}"),
            Instruction::Release { bit } => write!(f, "release {bit}"),
            Instruction::Stop => write!(f, "stop"),
            Instruction::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_eval_basics() {
        assert_eq!(AluOp::Add.eval(3, 4), 7);
        assert_eq!(AluOp::Sub.eval(3, 4), (-1i32) as u32);
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Sll.eval(1, 4), 16);
        assert_eq!(AluOp::Srl.eval(0x8000_0000, 31), 1);
        assert_eq!(AluOp::Sra.eval(0x8000_0000, 31), 0xFFFF_FFFF);
        assert_eq!(AluOp::Mul.eval(7, 6), 42);
        assert_eq!(AluOp::Slt.eval((-1i32) as u32, 0), 1);
        assert_eq!(AluOp::Sltu.eval((-1i32) as u32, 0), 0);
        assert_eq!(AluOp::Min.eval((-5i32) as u32, 3), (-5i32) as u32);
        assert_eq!(AluOp::Max.eval((-5i32) as u32, 3), 3);
    }

    #[test]
    fn alu_eval_division_never_traps() {
        assert_eq!(AluOp::Div.eval(10, 0), 0);
        assert_eq!(AluOp::Rem.eval(10, 0), 10);
        assert_eq!(AluOp::Div.eval(i32::MIN as u32, (-1i32) as u32), i32::MIN as u32);
        assert_eq!(AluOp::Rem.eval(i32::MIN as u32, (-1i32) as u32), 0);
        assert_eq!(AluOp::Div.eval((-9i32) as u32, 2), (-4i32) as u32);
        assert_eq!(AluOp::Rem.eval((-9i32) as u32, 2), (-1i32) as u32);
    }

    #[test]
    fn shift_amount_is_masked() {
        assert_eq!(AluOp::Sll.eval(1, 32), 1);
        assert_eq!(AluOp::Srl.eval(2, 33), 1);
    }

    #[test]
    fn cond_eval_and_inverse() {
        for cond in Cond::ALL {
            for (a, b) in [(0u32, 0u32), (1, 2), (2, 1), ((-1i32) as u32, 1)] {
                assert_ne!(
                    cond.eval(a, b),
                    cond.inverse().eval(a, b),
                    "{cond} vs inverse on ({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn srcs_and_dst() {
        let i = Instruction::Alu {
            op: AluOp::Add,
            rd: Reg::r(4),
            ra: Reg::r(1),
            rb: Operand::Reg(Reg::r(2)),
        };
        assert_eq!(i.srcs(), vec![Reg::r(1), Reg::r(2)]);
        assert_eq!(i.dst(), Some(Reg::r(4)));

        let s =
            Instruction::Store { width: Width::Word, rs: Reg::r(3), base: Reg::r(5), offset: 8 };
        assert_eq!(s.srcs(), vec![Reg::r(3), Reg::r(5)]);
        assert_eq!(s.dst(), None);

        let d =
            Instruction::Ldma { wram: Reg::r(0), mram: Reg::r(2), len: Operand::Reg(Reg::r(4)) };
        assert_eq!(d.srcs().len(), 3);
        // three even-bank sources: two extra RF cycles.
        assert_eq!(d.rf_hazard_cycles(), 2);
    }

    #[test]
    fn classes() {
        assert_eq!(Instruction::Nop.class(), InstrClass::Other);
        assert_eq!(Instruction::Stop.class(), InstrClass::Other);
        assert_eq!(Instruction::Tid { rd: Reg::r(0) }.class(), InstrClass::Arithmetic);
        assert_eq!(Instruction::Acquire { bit: Operand::Imm(1) }.class(), InstrClass::Sync);
        assert_eq!(Instruction::Jump { target: 0 }.class(), InstrClass::Control);
        assert_eq!(
            Instruction::Ldma { wram: Reg::r(0), mram: Reg::r(1), len: Operand::Imm(64) }.class(),
            InstrClass::Dma
        );
    }

    #[test]
    fn display_round_readable() {
        let i = Instruction::Load {
            width: Width::Half,
            signed: true,
            rd: Reg::r(7),
            base: Reg::r(8),
            offset: -4,
        };
        assert_eq!(i.to_string(), "lh r7, -4(r8)");
        let b = Instruction::Branch {
            cond: Cond::Ltu,
            ra: Reg::r(1),
            rb: Operand::Imm(10),
            target: 42,
        };
        assert_eq!(b.to_string(), "bltu r1, 10, 42");
    }

    #[test]
    fn operand_conversions() {
        let o: Operand = Reg::r(3).into();
        assert_eq!(o.as_reg(), Some(Reg::r(3)));
        let i: Operand = 5.into();
        assert_eq!(i.as_reg(), None);
    }
}
