//! Randomized property tests (seeded, dependency-free): every constructible
//! instruction encodes and decodes back to itself.

use pim_isa::{AluOp, Cond, Instruction, Operand, Reg, Width};
use pim_rng::StdRng;

fn arb_reg(rng: &mut StdRng) -> Reg {
    Reg::r(rng.gen_range(0u8..24))
}

fn arb_operand_i16(rng: &mut StdRng) -> Operand {
    if rng.gen_bool() {
        Operand::Reg(arb_reg(rng))
    } else {
        Operand::Imm(i32::from(rng.gen_range(i16::MIN..i16::MAX)))
    }
}

fn arb_operand_i32(rng: &mut StdRng) -> Operand {
    if rng.gen_bool() {
        Operand::Reg(arb_reg(rng))
    } else {
        Operand::Imm(rng.next_u32() as i32)
    }
}

fn arb_width_signed(rng: &mut StdRng) -> (Width, bool) {
    match rng.gen_range(0u8..3) {
        0 => (Width::Byte, rng.gen_bool()),
        1 => (Width::Half, rng.gen_bool()),
        _ => (Width::Word, false),
    }
}

fn arb_instruction(rng: &mut StdRng) -> Instruction {
    match rng.gen_range(0u8..15) {
        0 => Instruction::Nop,
        1 => Instruction::Stop,
        2 => Instruction::Alu {
            op: *rng.choose(&AluOp::ALL),
            rd: arb_reg(rng),
            ra: arb_reg(rng),
            rb: arb_operand_i32(rng),
        },
        3 => Instruction::Movi { rd: arb_reg(rng), imm: rng.next_u32() as i32 },
        4 => Instruction::Tid { rd: arb_reg(rng) },
        5 => {
            let (width, signed) = arb_width_signed(rng);
            Instruction::Load {
                width,
                signed,
                rd: arb_reg(rng),
                base: arb_reg(rng),
                offset: rng.next_u32() as i32,
            }
        }
        6 => {
            let (width, _) = arb_width_signed(rng);
            Instruction::Store {
                width,
                rs: arb_reg(rng),
                base: arb_reg(rng),
                offset: rng.next_u32() as i32,
            }
        }
        7 => {
            Instruction::Ldma { wram: arb_reg(rng), mram: arb_reg(rng), len: arb_operand_i32(rng) }
        }
        8 => {
            Instruction::Sdma { wram: arb_reg(rng), mram: arb_reg(rng), len: arb_operand_i32(rng) }
        }
        9 => Instruction::Branch {
            cond: *rng.choose(&Cond::ALL),
            ra: arb_reg(rng),
            rb: arb_operand_i16(rng),
            target: rng.gen_range(0u32..0x1_0000),
        },
        10 => Instruction::Jump { target: rng.next_u32() },
        11 => Instruction::Jal { rd: arb_reg(rng), target: rng.next_u32() },
        12 => Instruction::Jr { ra: arb_reg(rng) },
        13 => Instruction::Acquire {
            bit: if rng.gen_bool() {
                Operand::Reg(arb_reg(rng))
            } else {
                Operand::Imm(rng.gen_range(0i32..256))
            },
        },
        _ => Instruction::Release {
            bit: if rng.gen_bool() {
                Operand::Reg(arb_reg(rng))
            } else {
                Operand::Imm(rng.gen_range(0i32..256))
            },
        },
    }
}

#[test]
fn encode_decode_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x1547_0001);
    for _ in 0..4096 {
        let instr = arb_instruction(&mut rng);
        let word = instr.encode();
        let back = Instruction::decode(word).expect("decode of encoded word");
        assert_eq!(back, instr, "round trip failed for {instr:?}");
    }
}

#[test]
fn decode_never_panics() {
    let mut rng = StdRng::seed_from_u64(0x1547_0002);
    for _ in 0..65_536 {
        // Arbitrary bit patterns must either decode cleanly or error.
        let _ = Instruction::decode(rng.next_u64());
    }
}

#[test]
fn rf_hazard_bounded_by_sources() {
    let mut rng = StdRng::seed_from_u64(0x1547_0003);
    for _ in 0..4096 {
        let instr = arb_instruction(&mut rng);
        let srcs = instr.srcs();
        assert!(srcs.len() <= 3);
        assert!(instr.rf_hazard_cycles() <= srcs.len().saturating_sub(1) as u32);
    }
}
