//! Property tests: every constructible instruction encodes and decodes back
//! to itself.

use pim_isa::{AluOp, Cond, Instruction, Operand, Reg, Width};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..24).prop_map(Reg::r)
}

fn arb_operand_i16() -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_reg().prop_map(Operand::Reg),
        (i16::MIN..=i16::MAX).prop_map(|i| Operand::Imm(i32::from(i))),
    ]
}

fn arb_operand_i32() -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_reg().prop_map(Operand::Reg),
        any::<i32>().prop_map(Operand::Imm),
    ]
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop::sample::select(AluOp::ALL.to_vec())
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop::sample::select(Cond::ALL.to_vec())
}

fn arb_width_signed() -> impl Strategy<Value = (Width, bool)> {
    prop_oneof![
        any::<bool>().prop_map(|s| (Width::Byte, s)),
        any::<bool>().prop_map(|s| (Width::Half, s)),
        Just((Width::Word, false)),
    ]
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        Just(Instruction::Nop),
        Just(Instruction::Stop),
        (arb_alu_op(), arb_reg(), arb_reg(), arb_operand_i32())
            .prop_map(|(op, rd, ra, rb)| Instruction::Alu { op, rd, ra, rb }),
        (arb_reg(), any::<i32>()).prop_map(|(rd, imm)| Instruction::Movi { rd, imm }),
        arb_reg().prop_map(|rd| Instruction::Tid { rd }),
        (arb_width_signed(), arb_reg(), arb_reg(), any::<i32>()).prop_map(
            |((width, signed), rd, base, offset)| Instruction::Load {
                width,
                signed,
                rd,
                base,
                offset
            }
        ),
        (arb_width_signed(), arb_reg(), arb_reg(), any::<i32>()).prop_map(
            |((width, _), rs, base, offset)| Instruction::Store { width, rs, base, offset }
        ),
        (arb_reg(), arb_reg(), arb_operand_i32())
            .prop_map(|(wram, mram, len)| Instruction::Ldma { wram, mram, len }),
        (arb_reg(), arb_reg(), arb_operand_i32())
            .prop_map(|(wram, mram, len)| Instruction::Sdma { wram, mram, len }),
        (arb_cond(), arb_reg(), arb_operand_i16(), 0u32..=0xffff)
            .prop_map(|(cond, ra, rb, target)| Instruction::Branch { cond, ra, rb, target }),
        (0u32..=0xffff_ffff).prop_map(|target| Instruction::Jump { target }),
        (arb_reg(), 0u32..=0xffff_ffff)
            .prop_map(|(rd, target)| Instruction::Jal { rd, target }),
        arb_reg().prop_map(|ra| Instruction::Jr { ra }),
        prop_oneof![
            arb_reg().prop_map(Operand::Reg),
            (0i32..256).prop_map(Operand::Imm)
        ]
        .prop_map(|bit| Instruction::Acquire { bit }),
        prop_oneof![
            arb_reg().prop_map(Operand::Reg),
            (0i32..256).prop_map(Operand::Imm)
        ]
        .prop_map(|bit| Instruction::Release { bit }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trip(instr in arb_instruction()) {
        let word = instr.encode();
        let back = Instruction::decode(word).expect("decode of encoded word");
        prop_assert_eq!(back, instr);
    }

    #[test]
    fn decode_never_panics(word in any::<u64>()) {
        // Arbitrary bit patterns must either decode cleanly or error.
        let _ = Instruction::decode(word);
    }

    #[test]
    fn rf_hazard_bounded_by_sources(instr in arb_instruction()) {
        let srcs = instr.srcs();
        prop_assert!(srcs.len() <= 3);
        prop_assert!(instr.rf_hazard_cycles() <= srcs.len().saturating_sub(1) as u32);
    }
}
