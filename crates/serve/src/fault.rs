//! Seeded fault campaigns for the serving runtime.
//!
//! A [`FaultSpec`] is the operator-facing knob set (the CLI's `--faults`
//! string); a [`FaultPlan`] expands it against a concrete rank into the
//! deterministic schedule the event loop consumes: per-round per-DPU
//! fault draws (transient / stuck) and a pre-generated, sorted list of
//! rank outages. Everything is a pure function of `(spec, n_dpus,
//! duration_ns)` — fault draws are keyed on the *round index*, never on
//! wall-clock or thread timing, so a faulty run is as byte-reproducible
//! as a healthy one and a resumed run redraws the identical faults.
//!
//! The fault kinds are exactly [`pim_dpu::FaultKind`] — the same typed
//! errors the `pim-host` launch boundary produces when a fault is armed
//! on a device, so the policy layer tolerates precisely what the
//! hardware boundary can emit.

use pim_rng::StdRng;
use pimulator::pim_dpu::FaultKind;

/// Golden-ratio increment decorrelating per-round fault streams.
const ROUND_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// Operator knobs of a fault campaign (parsed from the CLI `--faults`
/// string).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Seed of the fault streams (independent of the traffic seed).
    pub seed: u64,
    /// Per-round, per-DPU probability of a transient launch fault, in
    /// per-mille (0–1000).
    pub transient_per_mille: u32,
    /// Per-round, per-DPU probability of a hang, in per-mille (0–1000).
    pub stuck_per_mille: u32,
    /// Watchdog timeout charged to a round that contained a hung DPU, µs.
    pub stuck_timeout_us: u64,
    /// Retry budget per request; a request failing more times is counted
    /// `failed` and leaves the system.
    pub max_retries: u32,
    /// Base retry backoff, µs; attempt `k` waits `backoff << (k-1)` of
    /// virtual time before re-dispatch.
    pub backoff_us: u64,
    /// Whole-rank outages to schedule across the run.
    pub outages: u32,
    /// How long each outage keeps its rank offline, ms.
    pub outage_ms: u64,
    /// DPUs per rank (an outage takes all of them down together).
    pub dpus_per_rank: u32,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 1,
            transient_per_mille: 0,
            stuck_per_mille: 0,
            stuck_timeout_us: 200,
            max_retries: 3,
            backoff_us: 50,
            outages: 0,
            outage_ms: 1,
            dpus_per_rank: 64,
        }
    }
}

impl FaultSpec {
    /// The fault-free spec: every rate zero. A run with this spec is
    /// byte-identical to a run with no spec at all.
    #[must_use]
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// `true` when the spec injects nothing.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.transient_per_mille == 0 && self.stuck_per_mille == 0 && self.outages == 0
    }

    /// Parses the CLI `--faults` string: comma-separated `key=value`
    /// pairs over the defaults. Keys: `seed`, `transient`, `stuck`
    /// (per-mille rates), `timeout_us`, `retries`, `backoff_us`,
    /// `outages`, `outage_ms`, `rank_dpus`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending pair on an unknown key, a
    /// malformed number, a rate above 1000, or a zero `rank_dpus`.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::default();
        for pair in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("--faults: `{pair}` is not key=value"))?;
            let num =
                |v: &str| v.parse::<u64>().map_err(|_| format!("--faults: bad number in `{pair}`"));
            match key {
                "seed" => spec.seed = num(value)?,
                "transient" => spec.transient_per_mille = num(value)? as u32,
                "stuck" => spec.stuck_per_mille = num(value)? as u32,
                "timeout_us" => spec.stuck_timeout_us = num(value)?,
                "retries" => spec.max_retries = num(value)? as u32,
                "backoff_us" => spec.backoff_us = num(value)?,
                "outages" => spec.outages = num(value)? as u32,
                "outage_ms" => spec.outage_ms = num(value)?,
                "rank_dpus" => spec.dpus_per_rank = num(value)? as u32,
                _ => return Err(format!("--faults: unknown key `{key}`")),
            }
        }
        if spec.transient_per_mille > 1000 || spec.stuck_per_mille > 1000 {
            return Err("--faults: per-mille rates must be at most 1000".into());
        }
        if spec.dpus_per_rank == 0 {
            return Err("--faults: rank_dpus must be positive".into());
        }
        Ok(spec)
    }

    /// Canonical one-line rendering for reports: `none` for a fault-free
    /// spec, else the full `key=value` list in parse order.
    #[must_use]
    pub fn label(&self) -> String {
        if self.is_none() {
            return "none".into();
        }
        format!(
            "seed={},transient={},stuck={},timeout_us={},retries={},backoff_us={},outages={},outage_ms={},rank_dpus={}",
            self.seed,
            self.transient_per_mille,
            self.stuck_per_mille,
            self.stuck_timeout_us,
            self.max_retries,
            self.backoff_us,
            self.outages,
            self.outage_ms,
            self.dpus_per_rank
        )
    }
}

/// One scheduled whole-rank outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// Virtual time the rank drops offline, ns.
    pub at_ns: u64,
    /// Virtual time it rejoins, ns.
    pub until_ns: u64,
    /// The rank taken down.
    pub rank: u32,
}

/// A [`FaultSpec`] expanded against a concrete rank: the deterministic
/// fault schedule the event loop consumes.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: FaultSpec,
    n_ranks: u32,
    outages: Vec<Outage>,
}

impl FaultPlan {
    /// Expands `spec` for a system of `n_dpus` over `duration_ns`:
    /// outage times and ranks are pre-drawn from the fault seed and
    /// sorted by onset, so the loop walks them with a cursor.
    #[must_use]
    pub fn generate(spec: FaultSpec, n_dpus: u32, duration_ns: u64) -> FaultPlan {
        let n_ranks = n_dpus.div_ceil(spec.dpus_per_rank).max(1);
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut outages: Vec<Outage> = (0..spec.outages)
            .map(|_| {
                let at_ns = rng.gen_range(0..duration_ns.max(1));
                let rank = rng.gen_range(0..n_ranks);
                Outage { at_ns, until_ns: at_ns + spec.outage_ms * 1_000_000, rank }
            })
            .collect();
        outages.sort_unstable_by_key(|o| (o.at_ns, o.rank));
        FaultPlan { spec, n_ranks, outages }
    }

    /// The spec this plan was expanded from.
    #[must_use]
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Ranks in the system under this plan's rank geometry.
    #[must_use]
    pub fn n_ranks(&self) -> u32 {
        self.n_ranks
    }

    /// The rank containing DPU `dpu`.
    #[must_use]
    pub fn rank_of(&self, dpu: u32) -> u32 {
        dpu / self.spec.dpus_per_rank
    }

    /// The pre-drawn outage schedule, sorted by onset.
    #[must_use]
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// Draws the faults of dispatch round `round` over the DPUs actually
    /// occupied this round, in their given order: `(dpu, kind)` pairs. A
    /// fresh stream is keyed on `(seed, round)`, so the draw depends only
    /// on the round index and the occupied set — not on wall-clock,
    /// threads, or how the loop got here (a resumed run redraws
    /// identically).
    #[must_use]
    pub fn round_faults(&self, round: u64, occupied: &[u32]) -> Vec<(u32, FaultKind)> {
        if self.spec.transient_per_mille == 0 && self.spec.stuck_per_mille == 0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(self.spec.seed ^ round.wrapping_mul(ROUND_MIX));
        let mut faults = Vec::new();
        for &dpu in occupied {
            if self.spec.transient_per_mille > 0
                && rng.gen_bool_ratio(self.spec.transient_per_mille, 1000)
            {
                faults.push((dpu, FaultKind::Transient));
            } else if self.spec.stuck_per_mille > 0
                && rng.gen_bool_ratio(self.spec.stuck_per_mille, 1000)
            {
                faults.push((
                    dpu,
                    FaultKind::Stuck { timeout_ns: self.spec.stuck_timeout_us * 1000 },
                ));
            }
        }
        faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_overrides_only_named_keys() {
        let spec = FaultSpec::parse("transient=5,retries=2, outages=1").unwrap();
        assert_eq!(spec.transient_per_mille, 5);
        assert_eq!(spec.max_retries, 2);
        assert_eq!(spec.outages, 1);
        assert_eq!(spec.stuck_per_mille, 0, "unnamed keys keep defaults");
        assert!(!spec.is_none());
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(FaultSpec::parse("bogus=1").is_err());
        assert!(FaultSpec::parse("transient").is_err());
        assert!(FaultSpec::parse("stuck=abc").is_err());
        assert!(FaultSpec::parse("transient=1001").is_err());
        assert!(FaultSpec::parse("rank_dpus=0").is_err());
    }

    #[test]
    fn empty_string_parses_to_none() {
        let spec = FaultSpec::parse("").unwrap();
        assert!(spec.is_none());
        assert_eq!(spec.label(), "none");
        assert_eq!(spec, FaultSpec::none());
    }

    #[test]
    fn label_round_trips_through_parse() {
        let spec = FaultSpec::parse("transient=7,stuck=3,outages=2,rank_dpus=4").unwrap();
        assert_eq!(FaultSpec::parse(&spec.label()).unwrap(), spec);
    }

    #[test]
    fn round_faults_are_deterministic_per_round() {
        let spec = FaultSpec::parse("transient=200,stuck=100,seed=9").unwrap();
        let plan = FaultPlan::generate(spec, 8, 1_000_000);
        let occupied: Vec<u32> = (0..8).collect();
        let a = plan.round_faults(17, &occupied);
        let b = plan.round_faults(17, &occupied);
        assert_eq!(a, b);
        // Across many rounds the streams differ (else every round fails
        // the same DPUs).
        assert!((0..50).any(|r| plan.round_faults(r, &occupied) != a));
    }

    #[test]
    fn outages_are_sorted_and_in_range() {
        let spec = FaultSpec::parse("outages=5,outage_ms=2,rank_dpus=4,seed=3").unwrap();
        let plan = FaultPlan::generate(spec, 8, 10_000_000);
        assert_eq!(plan.n_ranks(), 2);
        assert_eq!(plan.outages().len(), 5);
        assert!(plan.outages().windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        for o in plan.outages() {
            assert!(o.at_ns < 10_000_000);
            assert_eq!(o.until_ns, o.at_ns + 2_000_000);
            assert!(o.rank < 2);
        }
        assert_eq!(plan.rank_of(3), 0);
        assert_eq!(plan.rank_of(4), 1);
    }

    #[test]
    fn fault_free_plan_draws_nothing() {
        let plan = FaultPlan::generate(FaultSpec::none(), 8, 1_000_000);
        assert!(plan.outages().is_empty());
        assert!(plan.round_faults(0, &[0, 1, 2, 3]).is_empty());
    }
}
