//! Seeded open-loop traffic generation.
//!
//! Arrivals follow a Poisson-ish process on the *simulated* clock: the
//! inter-arrival gap is an exponential variate drawn with a dyadic
//! approximation — `gap = mean · ln2 · (G + U)` where `G` is geometric
//! (trailing zeros of a raw 64-bit draw) and `U` is a uniform fraction.
//! This avoids `f64::ln`, whose libm implementation is not guaranteed
//! bit-identical across platforms; the goldens require byte-identical
//! results JSON everywhere, and multiplication/addition are exact IEEE
//! operations. The approximation's mean is within ~4% of a true
//! exponential, which is irrelevant for a load knob.

use pim_rng::StdRng;

use crate::kernels::class_index;
use crate::queue::Request;
use crate::scenario::Scenario;

/// One generated arrival, before admission.
#[derive(Debug, Clone, Copy)]
pub struct Arrival {
    /// Simulated arrival time, ns.
    pub at_ns: u64,
    /// Index into the scenario's tenant list.
    pub tenant: usize,
    /// Request-class index (see [`crate::kernels::request_classes`]).
    pub class: u16,
}

/// ln 2, the only constant the dyadic exponential needs.
const LN2: f64 = core::f64::consts::LN_2;

/// Draws one inter-arrival gap with mean `mean_gap_ns` (never zero, so
/// virtual time always advances).
fn gap_ns(rng: &mut StdRng, mean_gap_ns: f64) -> u64 {
    let raw = rng.next_u64();
    let geometric = raw.trailing_zeros() as f64;
    let uniform = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    ((mean_gap_ns * LN2 * (geometric + uniform)) as u64).max(1)
}

/// Generates the full arrival schedule for `scenario` at `load` (a
/// multiplier on the scenario's base rate) over `duration_ns` of
/// simulated time. Tenants are drawn by [`crate::scenario::TenantSpec::share`],
/// workloads by the tenant's mix weights; everything comes from the one
/// seeded stream, so the schedule is a pure function of
/// `(scenario, seed, load, duration_ns)`.
///
/// # Panics
///
/// Panics if `load` is not positive or a mix names an unknown workload.
#[must_use]
pub fn generate(scenario: &Scenario, seed: u64, load: f64, duration_ns: u64) -> Vec<Arrival> {
    assert!(load > 0.0, "load multiplier must be positive");
    let mean_gap = scenario.mean_gap_ns as f64 / load;
    let mut rng = StdRng::seed_from_u64(seed);
    let share_total: u32 = scenario.tenants.iter().map(|t| t.share).sum();
    let mut arrivals = Vec::new();
    let mut t_ns = 0u64;
    loop {
        t_ns += gap_ns(&mut rng, mean_gap);
        if t_ns >= duration_ns {
            break;
        }
        // Weighted tenant draw, then a weighted workload draw from that
        // tenant's mix.
        let mut pick = rng.gen_range(0..share_total);
        let tenant = scenario
            .tenants
            .iter()
            .position(|t| {
                if pick < t.share {
                    true
                } else {
                    pick -= t.share;
                    false
                }
            })
            .expect("shares cover the draw");
        let mix = scenario.tenants[tenant].mix;
        let mix_total: u32 = mix.iter().map(|(_, w)| w).sum();
        let mut pick = rng.gen_range(0..mix_total);
        let workload = mix
            .iter()
            .find(|(_, w)| {
                if pick < *w {
                    true
                } else {
                    pick -= w;
                    false
                }
            })
            .expect("mix weights cover the draw")
            .0;
        let class = class_index(workload)
            .unwrap_or_else(|| panic!("scenario mix names unknown workload {workload}"));
        arrivals.push(Arrival { at_ns: t_ns, tenant, class });
    }
    arrivals
}

/// Turns an arrival into an admission-queue request with a stable id.
#[must_use]
pub fn to_request(id: u64, a: Arrival) -> Request {
    Request { id, tenant: a.tenant, class: a.class, arrival_ns: a.at_ns }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::scenario_by_name;

    #[test]
    fn same_seed_same_schedule() {
        let s = scenario_by_name("tiny").unwrap();
        let a = generate(s, 7, 1.0, 2_000_000);
        let b = generate(s, 7, 1.0, 2_000_000);
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.at_ns == y.at_ns && x.tenant == y.tenant && x.class == y.class));
    }

    #[test]
    fn load_scales_the_arrival_count() {
        let s = scenario_by_name("tiny").unwrap();
        let low = generate(s, 7, 0.5, 2_000_000).len();
        let high = generate(s, 7, 4.0, 2_000_000).len();
        assert!(high > 4 * low, "8x the load should bring far more arrivals ({low} vs {high})");
    }

    #[test]
    fn arrivals_are_ordered_and_bounded() {
        let s = scenario_by_name("demo").unwrap();
        let arrivals = generate(s, 3, 2.0, 1_000_000);
        assert!(arrivals.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert!(arrivals.iter().all(|a| a.at_ns < 1_000_000));
        assert!(arrivals.iter().all(|a| a.tenant < s.tenants.len()));
    }
}
