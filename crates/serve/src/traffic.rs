//! Seeded open-loop traffic generation.
//!
//! Arrivals follow a Poisson-ish process on the *simulated* clock: the
//! inter-arrival gap is an exponential variate drawn with a dyadic
//! approximation — `gap = mean · ln2 · (G + U)` where `G` is geometric
//! (trailing zeros of a raw 64-bit draw) and `U` is a uniform fraction.
//! This avoids `f64::ln`, whose libm implementation is not guaranteed
//! bit-identical across platforms; the goldens require byte-identical
//! results JSON everywhere, and multiplication/addition are exact IEEE
//! operations. The approximation's mean is within ~4% of a true
//! exponential, which is irrelevant for a load knob.

use pim_rng::StdRng;

use crate::kernels::class_index;
use crate::queue::Request;
use crate::scenario::Scenario;

/// One generated arrival, before admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Simulated arrival time, ns.
    pub at_ns: u64,
    /// Index into the scenario's tenant list.
    pub tenant: usize,
    /// Request-class index (see [`crate::kernels::request_classes`]).
    pub class: u16,
}

/// ln 2, the only constant the dyadic exponential needs.
const LN2: f64 = core::f64::consts::LN_2;

/// Draws one inter-arrival gap with mean `mean_gap_ns` (never zero, so
/// virtual time always advances).
fn gap_ns(rng: &mut StdRng, mean_gap_ns: f64) -> u64 {
    let raw = rng.next_u64();
    let geometric = raw.trailing_zeros() as f64;
    let uniform = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    ((mean_gap_ns * LN2 * (geometric + uniform)) as u64).max(1)
}

/// The resumable state of a [`TrafficGen`], captured mid-stream by
/// [`TrafficGen::state`]: the raw RNG words, the generator's clock, and
/// the one arrival drawn ahead for peeking. A generator rebuilt from this
/// via [`TrafficGen::restore`] emits the exact remaining schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficState {
    /// xoshiro256** state words ([`StdRng::state`]).
    pub rng: [u64; 4],
    /// The generator clock, ns (time of the last *drawn* arrival).
    pub t_ns: u64,
    /// The arrival drawn ahead but not yet consumed.
    pub peeked: Option<Arrival>,
}

/// A streaming arrival generator: the same seeded schedule as
/// [`generate`], produced one arrival at a time so the serving loop can
/// checkpoint mid-stream without materializing the whole schedule.
///
/// The schedule is a pure function of `(scenario, seed, load,
/// duration_ns)`; tenants are drawn by
/// [`crate::scenario::TenantSpec::share`], workloads by the tenant's mix
/// weights, all from the one seeded stream.
#[derive(Debug, Clone)]
pub struct TrafficGen<'a> {
    scenario: &'a Scenario,
    rng: StdRng,
    share_total: u32,
    mean_gap: f64,
    duration_ns: u64,
    t_ns: u64,
    peeked: Option<Arrival>,
}

impl<'a> TrafficGen<'a> {
    /// Starts the schedule for `scenario` at `load` (a multiplier on the
    /// scenario's base rate) over `duration_ns` of simulated time.
    ///
    /// # Panics
    ///
    /// Panics if `load` is not positive or a mix names an unknown
    /// workload.
    #[must_use]
    pub fn new(scenario: &'a Scenario, seed: u64, load: f64, duration_ns: u64) -> Self {
        assert!(load > 0.0, "load multiplier must be positive");
        let mut gen = TrafficGen {
            scenario,
            rng: StdRng::seed_from_u64(seed),
            share_total: scenario.tenants.iter().map(|t| t.share).sum(),
            mean_gap: scenario.mean_gap_ns as f64 / load,
            duration_ns,
            t_ns: 0,
            peeked: None,
        };
        gen.peeked = gen.draw();
        gen
    }

    /// Rebuilds a generator from a mid-stream [`TrafficState`] snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `load` is not positive.
    #[must_use]
    pub fn restore(
        scenario: &'a Scenario,
        load: f64,
        duration_ns: u64,
        state: &TrafficState,
    ) -> Self {
        assert!(load > 0.0, "load multiplier must be positive");
        TrafficGen {
            scenario,
            rng: StdRng::from_state(state.rng),
            share_total: scenario.tenants.iter().map(|t| t.share).sum(),
            mean_gap: scenario.mean_gap_ns as f64 / load,
            duration_ns,
            t_ns: state.t_ns,
            peeked: state.peeked,
        }
    }

    /// Snapshots the generator for a checkpoint.
    #[must_use]
    pub fn state(&self) -> TrafficState {
        TrafficState { rng: self.rng.state(), t_ns: self.t_ns, peeked: self.peeked }
    }

    /// The next arrival, without consuming it (`None` once the schedule
    /// is exhausted).
    #[must_use]
    pub fn peek(&self) -> Option<Arrival> {
        self.peeked
    }

    /// Consumes and returns the next arrival.
    pub fn next_arrival(&mut self) -> Option<Arrival> {
        let out = self.peeked.take();
        if out.is_some() {
            self.peeked = self.draw();
        }
        out
    }

    /// Draws one arrival from the stream (`None` when the gap carries the
    /// clock past the duration — the stream ends there for good).
    fn draw(&mut self) -> Option<Arrival> {
        self.t_ns += gap_ns(&mut self.rng, self.mean_gap);
        if self.t_ns >= self.duration_ns {
            return None;
        }
        // Weighted tenant draw, then a weighted workload draw from that
        // tenant's mix.
        let mut pick = self.rng.gen_range(0..self.share_total);
        let tenant = self
            .scenario
            .tenants
            .iter()
            .position(|t| {
                if pick < t.share {
                    true
                } else {
                    pick -= t.share;
                    false
                }
            })
            .expect("shares cover the draw");
        let mix = self.scenario.tenants[tenant].mix;
        let mix_total: u32 = mix.iter().map(|(_, w)| w).sum();
        let mut pick = self.rng.gen_range(0..mix_total);
        let workload = mix
            .iter()
            .find(|(_, w)| {
                if pick < *w {
                    true
                } else {
                    pick -= w;
                    false
                }
            })
            .expect("mix weights cover the draw")
            .0;
        let class = class_index(workload)
            .unwrap_or_else(|| panic!("scenario mix names unknown workload {workload}"));
        Some(Arrival { at_ns: self.t_ns, tenant, class })
    }
}

/// Generates the full arrival schedule eagerly — [`TrafficGen`] drained
/// into a `Vec`.
///
/// # Panics
///
/// Panics if `load` is not positive or a mix names an unknown workload.
#[must_use]
pub fn generate(scenario: &Scenario, seed: u64, load: f64, duration_ns: u64) -> Vec<Arrival> {
    let mut gen = TrafficGen::new(scenario, seed, load, duration_ns);
    let mut arrivals = Vec::new();
    while let Some(a) = gen.next_arrival() {
        arrivals.push(a);
    }
    arrivals
}

/// Turns an arrival into an admission-queue request with a stable id.
#[must_use]
pub fn to_request(id: u64, a: Arrival) -> Request {
    Request { id, tenant: a.tenant, class: a.class, arrival_ns: a.at_ns }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::scenario_by_name;

    #[test]
    fn same_seed_same_schedule() {
        let s = scenario_by_name("tiny").unwrap();
        let a = generate(s, 7, 1.0, 2_000_000);
        let b = generate(s, 7, 1.0, 2_000_000);
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.at_ns == y.at_ns && x.tenant == y.tenant && x.class == y.class));
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let s = scenario_by_name("demo").unwrap();
        let full = generate(s, 13, 2.0, 5_000_000);
        assert!(full.len() > 40, "need a non-trivial schedule");
        let mut gen = TrafficGen::new(s, 13, 2.0, 5_000_000);
        for _ in 0..20 {
            gen.next_arrival();
        }
        let state = gen.state();
        let mut resumed = TrafficGen::restore(s, 2.0, 5_000_000, &state);
        let mut tail = Vec::new();
        while let Some(a) = resumed.next_arrival() {
            tail.push(a);
        }
        assert_eq!(&full[20..], tail.as_slice());
        // The original generator, drained in parallel, agrees too.
        let mut orig_tail = Vec::new();
        while let Some(a) = gen.next_arrival() {
            orig_tail.push(a);
        }
        assert_eq!(tail, orig_tail);
    }

    #[test]
    fn peek_does_not_consume() {
        let s = scenario_by_name("tiny").unwrap();
        let mut gen = TrafficGen::new(s, 7, 1.0, 2_000_000);
        let p = gen.peek().unwrap();
        assert_eq!(gen.peek(), Some(p));
        assert_eq!(gen.next_arrival(), Some(p));
    }

    #[test]
    fn load_scales_the_arrival_count() {
        let s = scenario_by_name("tiny").unwrap();
        let low = generate(s, 7, 0.5, 2_000_000).len();
        let high = generate(s, 7, 4.0, 2_000_000).len();
        assert!(high > 4 * low, "8x the load should bring far more arrivals ({low} vs {high})");
    }

    #[test]
    fn arrivals_are_ordered_and_bounded() {
        let s = scenario_by_name("demo").unwrap();
        let arrivals = generate(s, 3, 2.0, 1_000_000);
        assert!(arrivals.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert!(arrivals.iter().all(|a| a.at_ns < 1_000_000));
        assert!(arrivals.iter().all(|a| a.tenant < s.tenants.len()));
    }
}
