//! Serving scenarios: named, fully static descriptions of a tenant
//! population and its traffic, the serving-side analogue of the
//! experiment registry in `pim-bench`.
//!
//! A scenario pins everything the runtime needs to be reproducible: the
//! DPU rank size, the MMU knob, the scheduling policy, admission-queue
//! bounds, the base arrival rate, and per-tenant workload mixes drawn
//! from the PrIM suite. `pimsim serve --list` enumerates this registry
//! exactly like `pimsim exp --list` enumerates experiments.

/// One tenant of a serving scenario.
#[derive(Debug, Clone, Copy)]
pub struct TenantSpec {
    /// Tenant name, used in reports and per-tenant SLO accounting.
    pub name: &'static str,
    /// Relative share of *offered* traffic (arrival-side weight).
    pub share: u32,
    /// Weighted-fair scheduling weight (service-side weight). Distinct
    /// from [`TenantSpec::share`] so fairness can be measured against a
    /// traffic pattern that does not already match the weights.
    pub weight: u32,
    /// Maximum requests this tenant may hold in the admission queue;
    /// arrivals beyond it are rejected (and counted) as quota violations.
    pub quota: usize,
    /// Workload mix: `(PrIM workload name, draw weight)` pairs.
    pub mix: &'static [(&'static str, u32)],
}

/// A named serving scenario.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Stable name — the `pimsim serve` argument.
    pub name: &'static str,
    /// One-line description shown by `pimsim serve --list`.
    pub title: &'static str,
    /// DPUs in the serving rank.
    pub n_dpus: u32,
    /// Whether DPUs run with the paper's MMU model (§V-C) in front of
    /// MRAM — serving across tenants is exactly the scenario the paper's
    /// address-translation case study motivates.
    pub mmu: bool,
    /// Default scheduling policy (`fifo` | `size_class` | `weighted_fair`).
    pub policy: &'static str,
    /// Global admission-queue capacity (requests).
    pub queue_capacity: usize,
    /// Mean inter-arrival gap at load 1.0, in simulated nanoseconds.
    pub mean_gap_ns: u64,
    /// Default run length in simulated milliseconds.
    pub default_duration_ms: u64,
    /// The tenant population.
    pub tenants: &'static [TenantSpec],
}

/// All scenarios, in registry order.
#[must_use]
pub fn scenarios() -> &'static [Scenario] {
    const REGISTRY: &[Scenario] = &[
        Scenario {
            name: "tiny",
            title: "1 DPU, 2 tenants — the fast smoke/golden scenario",
            n_dpus: 1,
            mmu: false,
            policy: "fifo",
            queue_capacity: 32,
            mean_gap_ns: 20_000,
            default_duration_ms: 2,
            tenants: &[
                TenantSpec {
                    name: "latency",
                    share: 1,
                    weight: 1,
                    quota: 16,
                    mix: &[("BS", 1), ("VA", 1)],
                },
                TenantSpec { name: "batch", share: 1, weight: 1, quota: 16, mix: &[("TS", 1)] },
            ],
        },
        Scenario {
            name: "demo",
            title: "4 DPUs, 3 tenants over a mixed PrIM population",
            n_dpus: 4,
            mmu: false,
            policy: "size_class",
            queue_capacity: 128,
            mean_gap_ns: 20_000,
            default_duration_ms: 50,
            tenants: &[
                TenantSpec {
                    name: "interactive",
                    share: 2,
                    weight: 2,
                    quota: 48,
                    mix: &[("BS", 2), ("VA", 2), ("SEL", 1)],
                },
                TenantSpec {
                    name: "analytics",
                    share: 1,
                    weight: 1,
                    quota: 48,
                    mix: &[("GEMV", 1), ("TS", 1)],
                },
                TenantSpec {
                    name: "batch",
                    share: 1,
                    weight: 1,
                    quota: 48,
                    mix: &[("RED", 1), ("MLP", 1)],
                },
            ],
        },
        Scenario {
            name: "faulty",
            title: "8 DPUs across 2 ranks — the fault-injection scenario",
            n_dpus: 8,
            mmu: false,
            policy: "fifo",
            queue_capacity: 96,
            mean_gap_ns: 10_000,
            default_duration_ms: 5,
            tenants: &[
                TenantSpec {
                    name: "frontend",
                    share: 2,
                    weight: 2,
                    quota: 40,
                    mix: &[("BS", 1), ("VA", 1)],
                },
                TenantSpec {
                    name: "pipeline",
                    share: 1,
                    weight: 1,
                    quota: 40,
                    mix: &[("TS", 1), ("RED", 1)],
                },
            ],
        },
        Scenario {
            name: "sparse",
            title: "2 DPUs, sparse BSR tenants mixed with a dense baseline",
            n_dpus: 2,
            mmu: false,
            policy: "size_class",
            queue_capacity: 64,
            mean_gap_ns: 15_000,
            default_duration_ms: 4,
            tenants: &[
                TenantSpec {
                    name: "graphs",
                    share: 2,
                    weight: 2,
                    quota: 32,
                    mix: &[("SpMV-BSR", 2), ("SpMM-BSR", 1)],
                },
                TenantSpec {
                    name: "dense",
                    share: 1,
                    weight: 1,
                    quota: 32,
                    mix: &[("SpMV", 1), ("VA", 1)],
                },
            ],
        },
        Scenario {
            name: "inference",
            title: "2 DPUs, quantized NN-inference tenants under weighted-fair",
            n_dpus: 2,
            mmu: false,
            policy: "weighted_fair",
            queue_capacity: 64,
            mean_gap_ns: 15_000,
            default_duration_ms: 4,
            tenants: &[
                TenantSpec {
                    name: "chat",
                    share: 2,
                    weight: 3,
                    quota: 32,
                    mix: &[("ATTN", 2), ("MLP-Q", 1)],
                },
                TenantSpec {
                    name: "embed",
                    share: 1,
                    weight: 1,
                    quota: 32,
                    mix: &[("MLP-Q", 1), ("GEMV", 1)],
                },
            ],
        },
        Scenario {
            name: "saturate",
            title: "2 DPUs under overload, weighted-fair 3:1, MMU on",
            n_dpus: 2,
            mmu: true,
            policy: "weighted_fair",
            queue_capacity: 64,
            mean_gap_ns: 2_000,
            default_duration_ms: 10,
            tenants: &[
                TenantSpec { name: "gold", share: 1, weight: 3, quota: 32, mix: &[("VA", 1)] },
                TenantSpec { name: "bronze", share: 1, weight: 1, quota: 32, mix: &[("TS", 1)] },
            ],
        },
    ];
    REGISTRY
}

/// Looks up one scenario by name.
#[must_use]
pub fn scenario_by_name(name: &str) -> Option<&'static Scenario> {
    scenarios().iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names: Vec<&str> = scenarios().iter().map(|s| s.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate scenario names");
        assert!(scenario_by_name("demo").is_some());
        assert!(scenario_by_name("sparse").is_some());
        assert!(scenario_by_name("inference").is_some());
        assert!(scenario_by_name("nope").is_none());
    }

    #[test]
    fn every_mix_entry_is_a_real_prim_workload() {
        for s in scenarios() {
            for t in s.tenants {
                assert!(!t.mix.is_empty(), "{}/{} has an empty mix", s.name, t.name);
                for (w, weight) in t.mix {
                    assert!(
                        pimulator::prim_suite::workload_by_name(w).is_some(),
                        "{}/{} names unknown workload {w}",
                        s.name,
                        t.name
                    );
                    assert!(*weight > 0);
                }
            }
        }
    }

    #[test]
    fn every_scenario_policy_resolves() {
        for s in scenarios() {
            assert!(
                crate::sched::policy_by_name(s.policy).is_some(),
                "{} names unknown policy {}",
                s.name,
                s.policy
            );
        }
    }
}
