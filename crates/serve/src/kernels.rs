//! Request classes and the composition profiler.
//!
//! Serving requests are not full PrIM runs — a PrIM workload's kernel is
//! linked at WRAM base 0 and cannot be co-located. Each PrIM workload
//! therefore maps to a *proxy request kernel*: a partition-built kernel
//! (mem-bound DMA loop, compute-bound MAC loop, or a mixed loop) whose
//! intensity is calibrated per workload, built per *slot* so four
//! requests share one 16-tasklet DPU through [`pim_dpu::colocate`] —
//! exactly the paper's §V-C co-location machinery, now under load.
//!
//! A DPU's *composition* is the vector of request classes occupying its
//! slots. Execution cost is obtained by cycle-level simulation of the
//! co-located image once per distinct composition and memoized: rounds
//! re-use profiles, and only first-seen compositions pay for simulation
//! (those simulations are what `--threads` parallelizes).

use std::collections::BTreeMap;

use pimulator::pim_asm::{KernelBuilder, LinkOptions};
use pimulator::pim_dpu::{colocate, Colocated, DpuConfig, SimError, Tenant};
use pimulator::pim_host::{PimSystem, TransferConfig};
use pimulator::pim_isa::{Cond, MemLayout};
use pimulator::trace::JobTrace;

/// Request slots per DPU: four co-located tenants of four tasklets each
/// fill the paper's 16-tasklet baseline.
pub const SLOTS_PER_DPU: usize = 4;

/// Tasklets each slot receives.
pub const TASKLETS_PER_SLOT: u32 = 4;

/// WRAM partition size per slot (4 × 16 KB fills the 64 KB scratchpad).
pub const SLOT_WRAM_BYTES: u32 = 16 * 1024;

/// MRAM staging region per slot (inputs land at `slot * SLOT_MRAM_BYTES`).
pub const SLOT_MRAM_BYTES: u32 = 1 << 20;

/// Sentinel class for an unoccupied slot.
pub const EMPTY_SLOT: u16 = u16::MAX;

/// Broad behavioural shape of a proxy request kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Dominated by WRAM←MRAM DMA (pointer-chasing probes, streaming).
    MemBound,
    /// Dominated by the ALU (long multiply–accumulate chains).
    ComputeBound,
    /// Alternating DMA and arithmetic.
    Mixed,
    /// Irregular gather: small DMAs at data-dependent addresses (the
    /// sparse BSR family's `x[colidx]` access shape).
    Gather,
    /// Chained inference: compute phases punctuated by staging
    /// round-trips, the single-kernel proxy for a multi-launch request.
    Chained,
}

/// One request class: the proxy kernel standing in for a PrIM workload.
#[derive(Debug, Clone, Copy)]
pub struct RequestClass {
    /// The PrIM workload this class proxies.
    pub workload: &'static str,
    /// Kernel shape.
    pub kind: KernelKind,
    /// Loop trip count (per tasklet), the intensity knob.
    pub iters: u32,
    /// Host→DPU bytes staged per request.
    pub input_bytes: u32,
    /// DPU→host bytes pulled per request.
    pub output_bytes: u32,
}

/// The class table: one proxy per PrIM workload, in the suite's order.
/// Intensities are coarse calibrations of each workload's character
/// (memory-bound probes vs long compute chains), not timing models.
#[must_use]
pub fn request_classes() -> &'static [RequestClass] {
    const MEM_IN: u32 = 4096;
    const CPU_IN: u32 = 512;
    const MIX_IN: u32 = 2048;
    const OUT: u32 = 256;
    const CLASSES: &[RequestClass] = &[
        RequestClass {
            workload: "BFS",
            kind: KernelKind::Mixed,
            iters: 24,
            input_bytes: MIX_IN,
            output_bytes: OUT,
        },
        RequestClass {
            workload: "BS",
            kind: KernelKind::MemBound,
            iters: 40,
            input_bytes: MEM_IN,
            output_bytes: OUT,
        },
        RequestClass {
            workload: "GEMV",
            kind: KernelKind::ComputeBound,
            iters: 1200,
            input_bytes: CPU_IN,
            output_bytes: OUT,
        },
        RequestClass {
            workload: "HST-L",
            kind: KernelKind::Mixed,
            iters: 32,
            input_bytes: MIX_IN,
            output_bytes: OUT,
        },
        RequestClass {
            workload: "HST-S",
            kind: KernelKind::Mixed,
            iters: 28,
            input_bytes: MIX_IN,
            output_bytes: OUT,
        },
        RequestClass {
            workload: "MLP",
            kind: KernelKind::ComputeBound,
            iters: 1600,
            input_bytes: CPU_IN,
            output_bytes: OUT,
        },
        RequestClass {
            workload: "NW",
            kind: KernelKind::Mixed,
            iters: 36,
            input_bytes: MIX_IN,
            output_bytes: OUT,
        },
        RequestClass {
            workload: "RED",
            kind: KernelKind::MemBound,
            iters: 48,
            input_bytes: MEM_IN,
            output_bytes: OUT,
        },
        RequestClass {
            workload: "SCAN-RSS",
            kind: KernelKind::MemBound,
            iters: 44,
            input_bytes: MEM_IN,
            output_bytes: OUT,
        },
        RequestClass {
            workload: "SCAN-SSA",
            kind: KernelKind::MemBound,
            iters: 40,
            input_bytes: MEM_IN,
            output_bytes: OUT,
        },
        RequestClass {
            workload: "SEL",
            kind: KernelKind::MemBound,
            iters: 36,
            input_bytes: MEM_IN,
            output_bytes: OUT,
        },
        RequestClass {
            workload: "SpMV",
            kind: KernelKind::Mixed,
            iters: 40,
            input_bytes: MIX_IN,
            output_bytes: OUT,
        },
        RequestClass {
            workload: "TRNS",
            kind: KernelKind::MemBound,
            iters: 52,
            input_bytes: MEM_IN,
            output_bytes: OUT,
        },
        RequestClass {
            workload: "TS",
            kind: KernelKind::ComputeBound,
            iters: 2000,
            input_bytes: CPU_IN,
            output_bytes: OUT,
        },
        RequestClass {
            workload: "UNI",
            kind: KernelKind::MemBound,
            iters: 32,
            input_bytes: MEM_IN,
            output_bytes: OUT,
        },
        RequestClass {
            workload: "VA",
            kind: KernelKind::MemBound,
            iters: 28,
            input_bytes: MEM_IN,
            output_bytes: OUT,
        },
        // Extension families are appended after the dense suite so the
        // indices of the original 16 classes (and every golden snapshot
        // keyed on them) stay stable.
        RequestClass {
            workload: "SpMV-BSR",
            kind: KernelKind::Gather,
            iters: 96,
            input_bytes: MIX_IN,
            output_bytes: OUT,
        },
        RequestClass {
            workload: "SpMM-BSR",
            kind: KernelKind::Gather,
            iters: 144,
            input_bytes: MIX_IN,
            output_bytes: OUT,
        },
        RequestClass {
            workload: "MLP-Q",
            kind: KernelKind::Chained,
            iters: 420,
            input_bytes: CPU_IN,
            output_bytes: OUT,
        },
        RequestClass {
            workload: "ATTN",
            kind: KernelKind::Chained,
            iters: 300,
            input_bytes: CPU_IN,
            output_bytes: OUT,
        },
    ];
    CLASSES
}

/// Resolves a PrIM workload name (case-insensitive, as
/// `prim_suite::workload_by_name`) to its class index.
#[must_use]
pub fn class_index(workload: &str) -> Option<u16> {
    request_classes()
        .iter()
        .position(|c| c.workload.eq_ignore_ascii_case(workload))
        .map(|i| i as u16)
}

/// Builds the partition-built proxy kernel for `class` in `slot`
/// (`None` builds the idle filler for an empty slot).
fn slot_program(class: Option<&RequestClass>, slot: usize) -> pimulator::pim_asm::DpuProgram {
    let wram_base = slot as u32 * SLOT_WRAM_BYTES;
    let mram_base = (slot as u32 * SLOT_MRAM_BYTES) as i32;
    let mut k = KernelBuilder::with_partition(wram_base, slot as u32 * 8);
    match class.map(|c| c.kind) {
        None => k.stop(),
        Some(KernelKind::MemBound) => {
            let c = class.unwrap();
            let buf = k.alloc_wram(2048, 8);
            let [w, m, i, t] = k.regs(["w", "m", "i", "t"]);
            k.tid(t);
            k.mul(w, t, 256);
            k.add(w, w, buf as i32);
            k.mul(m, t, 16 * 1024);
            k.add(m, m, mram_base);
            k.movi(i, c.iters as i32);
            let top = k.label_here("loop");
            k.ldma(w, m, 256);
            k.add(m, m, 1024);
            k.sub(i, i, 1);
            k.branch(Cond::Ne, i, 0, &top);
            k.stop();
        }
        Some(KernelKind::ComputeBound) => {
            let c = class.unwrap();
            let [a, b, i] = k.regs(["a", "b", "i"]);
            k.movi(a, 1);
            k.movi(b, 3);
            k.movi(i, c.iters as i32);
            let top = k.label_here("loop");
            k.mul(a, a, b);
            k.add(a, a, 7);
            k.sub(i, i, 1);
            k.branch(Cond::Ne, i, 0, &top);
            k.stop();
        }
        Some(KernelKind::Mixed) => {
            let c = class.unwrap();
            let buf = k.alloc_wram(2048, 8);
            let [w, m, i, t, a] = k.regs(["w", "m", "i", "t", "a"]);
            k.tid(t);
            k.mul(w, t, 256);
            k.add(w, w, buf as i32);
            k.mul(m, t, 16 * 1024);
            k.add(m, m, mram_base);
            k.movi(a, 1);
            k.movi(i, c.iters as i32);
            let top = k.label_here("loop");
            k.ldma(w, m, 256);
            k.mul(a, a, 3);
            k.add(a, a, 1);
            k.add(m, m, 1024);
            k.sub(i, i, 1);
            k.branch(Cond::Ne, i, 0, &top);
            k.stop();
        }
        Some(KernelKind::Gather) => {
            // Irregular gather: each iteration derives a pseudo-random
            // 8-aligned offset inside a private 16 KB MRAM window and
            // fetches a single 8-byte element, the access shape of the
            // BSR kernels' `x[colidx]` loads.
            let c = class.unwrap();
            let buf = k.alloc_wram(2048, 8);
            let [w, m, mb, i, t, a] = k.regs(["w", "m", "mb", "i", "t", "a"]);
            k.tid(t);
            k.mul(w, t, 8);
            k.add(w, w, buf as i32);
            k.mul(mb, t, 16 * 1024);
            k.add(mb, mb, mram_base);
            k.add(a, t, 1);
            k.movi(i, c.iters as i32);
            let top = k.label_here("loop");
            k.mul(a, a, 1_103_515_245);
            k.add(a, a, 12_345);
            k.alu(pimulator::pim_isa::AluOp::Srl, m, a, 8);
            k.alu(pimulator::pim_isa::AluOp::And, m, m, 0x3ff8);
            k.add(m, m, mb);
            k.ldma(w, m, 8);
            k.sub(i, i, 1);
            k.branch(Cond::Ne, i, 0, &top);
            k.stop();
        }
        Some(KernelKind::Chained) => {
            // Chained inference proxy: three compute phases separated by
            // staging round-trips (spill to MRAM, reload), mimicking a
            // multi-launch request's host-side staging boundaries.
            let c = class.unwrap();
            let buf = k.alloc_wram(128, 8);
            let [a, b, i, w, m, t] = k.regs(["a", "b", "i", "w", "m", "t"]);
            k.tid(t);
            k.mul(w, t, 8);
            k.add(w, w, buf as i32);
            k.movi(a, 1);
            k.movi(b, 3);
            for phase in 0..3u32 {
                k.mul(m, t, 64);
                k.add(m, m, mram_base + (phase * 8) as i32);
                k.movi(i, c.iters as i32);
                let top = k.fresh_label("phase");
                k.place(&top);
                k.mul(a, a, b);
                k.add(a, a, 7);
                k.sub(i, i, 1);
                k.branch(Cond::Ne, i, 0, &top);
                k.sw(a, w, 0);
                k.sdma(w, m, 8);
                k.ldma(w, m, 8);
                k.lw(a, w, 0);
            }
            k.stop();
        }
    }
    k.build_with(&LinkOptions::default()).expect("proxy request kernel builds")
}

/// Merges the slot programs of one composition into a loadable image.
///
/// # Panics
///
/// Panics if the slots cannot co-locate — the slot partitioning is a
/// static invariant of this module, so failure is a bug, not load error.
#[must_use]
pub fn colocate_composition(comp: &[u16]) -> Colocated {
    let classes = request_classes();
    let programs: Vec<_> = comp
        .iter()
        .enumerate()
        .map(|(slot, &c)| slot_program((c != EMPTY_SLOT).then(|| &classes[c as usize]), slot))
        .collect();
    let tenants: Vec<Tenant<'_>> =
        programs.iter().map(|p| Tenant { program: p, n_tasklets: TASKLETS_PER_SLOT }).collect();
    colocate(&tenants, &MemLayout::default(), false).expect("serving slots co-locate")
}

/// The memoized cost of one composition.
#[derive(Debug, Clone)]
pub struct CompositionProfile {
    /// Per-slot kernel finish time, ns from launch (0 for empty slots).
    pub slot_exec_ns: Vec<f64>,
    /// Kernel makespan of the whole DPU, ns.
    pub makespan_ns: f64,
}

/// Cycle-simulates one composition on a single-DPU system and returns
/// its profile (plus the harvested event trace when `trace_capacity` is
/// non-zero). Inputs are staged and outputs pulled through the fallible
/// transfer API — a serving batch must never abort the process on a
/// routing bug.
///
/// # Errors
///
/// Propagates a [`SimError`] from the staged transfers or the launch.
pub fn profile_composition(
    comp: &[u16],
    cfg: &DpuConfig,
    trace_capacity: usize,
) -> Result<(CompositionProfile, Option<JobTrace>), SimError> {
    let classes = request_classes();
    let merged = colocate_composition(comp);
    let mut sim_cfg = cfg.clone();
    if trace_capacity > 0 {
        sim_cfg = sim_cfg.with_event_trace(trace_capacity);
    }
    let mut sys = PimSystem::new(1, sim_cfg, TransferConfig::paper());
    for (slot, &c) in comp.iter().enumerate() {
        if c != EMPTY_SLOT {
            let input = vec![0u8; classes[c as usize].input_bytes as usize];
            sys.try_copy_to_mram(0, slot as u32 * SLOT_MRAM_BYTES, &input)?;
        }
    }
    sys.dpu_mut(0).load_colocated(&merged)?;
    let report = sys.launch_all()?;
    let stats = &report.per_dpu[0];
    let finishes = merged.tenant_finish_cycles(&stats.tasklet_stop_cycle);
    let to_ns = |cycles: u64| cycles as f64 * 1000.0 / f64::from(stats.freq_mhz.max(1));
    for (slot, &c) in comp.iter().enumerate() {
        if c != EMPTY_SLOT {
            let _ = sys.try_copy_from_mram(
                0,
                slot as u32 * SLOT_MRAM_BYTES,
                classes[c as usize].output_bytes,
            )?;
        }
    }
    let profile = CompositionProfile {
        slot_exec_ns: finishes.iter().map(|&f| to_ns(f)).collect(),
        makespan_ns: stats.time_ns(),
    };
    let trace = sys.take_trace().map(|t| JobTrace { label: composition_label(comp), trace: t });
    Ok((profile, trace))
}

/// A human-readable label for a composition (`"BS+TS+--+VA"`).
#[must_use]
pub fn composition_label(comp: &[u16]) -> String {
    let classes = request_classes();
    comp.iter()
        .map(|&c| if c == EMPTY_SLOT { "--" } else { classes[c as usize].workload })
        .collect::<Vec<_>>()
        .join("+")
}

/// The memoization table, keyed by composition vector. `BTreeMap` keeps
/// iteration (and therefore any reporting derived from it) deterministic.
pub type CompositionCache = BTreeMap<Vec<u16>, CompositionProfile>;

#[cfg(test)]
mod tests {
    use super::*;
    use pimulator::pim_dpu::MAX_TASKLETS;

    #[test]
    fn class_table_covers_all_prim_workloads() {
        let classes = request_classes();
        assert_eq!(classes.len(), pimulator::prim_suite::extended_workloads().len());
        for c in classes {
            assert!(
                pimulator::prim_suite::workload_by_name(c.workload).is_some(),
                "{} is not a PrIM workload",
                c.workload
            );
            assert!(c.iters > 0 && c.input_bytes > 0 && c.output_bytes > 0);
        }
        for w in pimulator::prim_suite::extended_workloads() {
            assert!(class_index(w.name()).is_some(), "{} has no request class", w.name());
        }
        // The dense prefix keeps its historical indices.
        assert_eq!(class_index("BFS"), Some(0));
        assert_eq!(class_index("VA"), Some(15));
        assert_eq!(class_index("SpMV-BSR"), Some(16));
        assert_eq!(class_index("va"), class_index("VA"));
        assert!(class_index("nope").is_none());
    }

    #[test]
    fn extension_classes_profile_alone() {
        let cfg = DpuConfig::paper_baseline(SLOTS_PER_DPU as u32 * TASKLETS_PER_SLOT);
        for name in ["SpMV-BSR", "MLP-Q"] {
            let comp = vec![class_index(name).unwrap(), EMPTY_SLOT, EMPTY_SLOT, EMPTY_SLOT];
            let (p, _) = profile_composition(&comp, &cfg, 0).unwrap();
            assert!(p.slot_exec_ns[0] > 0.0, "{name} proxy ran");
        }
    }

    #[test]
    fn slot_geometry_fits_the_hardware() {
        assert!(SLOTS_PER_DPU as u32 * TASKLETS_PER_SLOT <= MAX_TASKLETS);
        assert!(SLOTS_PER_DPU as u32 * SLOT_WRAM_BYTES <= MemLayout::default().wram_bytes);
        assert!(SLOTS_PER_DPU as u32 * SLOT_MRAM_BYTES <= MemLayout::default().mram_bytes);
    }

    #[test]
    fn every_class_profiles_alone_and_empty_slots_cost_nothing() {
        let cfg = DpuConfig::paper_baseline(SLOTS_PER_DPU as u32 * TASKLETS_PER_SLOT);
        let comp = vec![class_index("VA").unwrap(), EMPTY_SLOT, EMPTY_SLOT, EMPTY_SLOT];
        let (p, trace) = profile_composition(&comp, &cfg, 0).unwrap();
        assert!(trace.is_none());
        assert!(p.slot_exec_ns[0] > 0.0);
        assert!(p.makespan_ns >= p.slot_exec_ns[0]);
        // Idle slots stop immediately; their finish must be far below the
        // occupied slot's.
        assert!(p.slot_exec_ns[1] < p.slot_exec_ns[0] / 2.0);
    }

    #[test]
    fn compute_heavy_classes_run_longer_than_light_ones() {
        let cfg = DpuConfig::paper_baseline(SLOTS_PER_DPU as u32 * TASKLETS_PER_SLOT);
        let ts = vec![class_index("TS").unwrap(); SLOTS_PER_DPU];
        let va = vec![class_index("VA").unwrap(); SLOTS_PER_DPU];
        let (p_ts, _) = profile_composition(&ts, &cfg, 0).unwrap();
        let (p_va, _) = profile_composition(&va, &cfg, 0).unwrap();
        assert!(p_ts.makespan_ns > p_va.makespan_ns);
    }

    #[test]
    fn profiling_is_deterministic_and_traceable() {
        let cfg = DpuConfig::paper_baseline(SLOTS_PER_DPU as u32 * TASKLETS_PER_SLOT);
        let comp = vec![
            class_index("BS").unwrap(),
            class_index("TS").unwrap(),
            EMPTY_SLOT,
            class_index("VA").unwrap(),
        ];
        let (a, _) = profile_composition(&comp, &cfg, 0).unwrap();
        let (b, trace) = profile_composition(&comp, &cfg, 256).unwrap();
        assert_eq!(a.slot_exec_ns, b.slot_exec_ns);
        assert_eq!(a.makespan_ns, b.makespan_ns);
        let trace = trace.expect("tracing enabled");
        assert_eq!(trace.label, "BS+TS+--+VA");
        assert!(trace.trace.event_count() > 0);
    }
}
