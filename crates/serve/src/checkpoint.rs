//! Deterministic checkpoint/restore of the serving event loop.
//!
//! A [`Checkpoint`] captures everything the loop needs to continue a run
//! from a virtual-time cut: the traffic generator's RNG words, the
//! admission queue and its counters, the pending retry set, per-tenant
//! accounting and SLO histograms, the scheduling policy's internal
//! state, the composition-cache *key set*, and the fault-plan cursor.
//! Floats (the transfer/kernel timeline) are stored as raw IEEE bits so
//! the JSON round-trip is exact; everything else is integers. Resuming
//! from a checkpoint and running to completion produces results JSON
//! **byte-identical** to the uninterrupted run — pinned by
//! `tests/serving_faults.rs`.
//!
//! The composition cache itself (cycle-level profiles) is deliberately
//! *not* serialized: profiles are a pure function of the composition, so
//! a resumed run re-simulates on first touch and reaches the same
//! numbers; only the key set travels, to keep the
//! `distinct_compositions` count exact.

use pimulator::pim_host::ExecutionTimeline;
use pimulator::report::Json;

use crate::queue::{Request, TenantAdmission};
use crate::slo::LatencySplit;
use crate::traffic::{Arrival, TrafficState};

/// Schema marker of the checkpoint document. Bumped to `/2` when the
/// channel-mode identity field joined the document (v1 checkpoints are
/// rejected with a schema error rather than silently resumed under the
/// wrong transfer model).
pub const CHECKPOINT_SCHEMA: &str = "pim-serve-checkpoint/2";

/// One pending retry: a request that failed `attempt` times and
/// re-enters dispatch once virtual time reaches `ready_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryEntry {
    /// Virtual time the retry becomes dispatchable, ns.
    pub ready_at: u64,
    /// Launch failures so far.
    pub attempt: u32,
    /// The original request (id, tenant, class, arrival time).
    pub req: Request,
}

/// The full resumable state of a serving run at one virtual-time cut.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Scenario name — resume validates it.
    pub scenario: String,
    /// Resolved policy name — resume validates it.
    pub policy: String,
    /// Traffic seed.
    pub seed: u64,
    /// Load multiplier as raw IEEE bits (exact round-trip).
    pub load_bits: u64,
    /// Arrival-window length, ns.
    pub duration_ns: u64,
    /// Canonical fault-spec label ([`crate::fault::FaultSpec::label`]).
    pub faults: String,
    /// Channel-mode label ([`pimulator::pim_host::ChannelMode::label`])
    /// — resume validates it: the transfer model shapes every round's
    /// timing, so resuming under a different mode would be a Franken-run.
    pub channel: String,
    /// Virtual time of the cut, ns.
    pub vtime: u64,
    /// Rounds dispatched so far.
    pub rounds: u64,
    /// Next arrival id.
    pub next_id: u64,
    /// Traffic generator state.
    pub traffic: TrafficState,
    /// Queued requests in FIFO order.
    pub queue: Vec<Request>,
    /// Per-tenant admission counters.
    pub admission: Vec<TenantAdmission>,
    /// Pending retries, sorted by `(ready_at, id)`.
    pub retries: Vec<RetryEntry>,
    /// Per-tenant completed counts.
    pub completed: Vec<u64>,
    /// Per-tenant failed counts (retry budget exhausted).
    pub failed: Vec<u64>,
    /// Per-tenant retry re-dispatch counts.
    pub retried: Vec<u64>,
    /// Per-tenant degraded-completion counts.
    pub degraded: Vec<u64>,
    /// Per-tenant latency splits.
    pub splits: Vec<LatencySplit>,
    /// Accumulated transfer/kernel timeline.
    pub timeline: ExecutionTimeline,
    /// Scheduling-policy internal state ([`crate::sched::SchedulerPolicy::snapshot`]).
    pub policy_state: Json,
    /// Canonical composition keys seen so far (cache key set).
    pub seen: Vec<Vec<u16>>,
    /// Outages consumed from the fault plan's sorted schedule.
    pub outage_cursor: usize,
    /// Currently offline ranks as `(rank, rejoin_ns)` in activation order.
    pub active_outages: Vec<(u32, u64)>,
    /// Fault-event request counts: `[transient, stuck, rank_offline]`.
    pub fault_counts: [u64; 3],
}

fn request_json(r: &Request) -> Json {
    Json::arr([
        Json::from(r.id),
        Json::from(r.tenant as u64),
        Json::from(u64::from(r.class)),
        Json::from(r.arrival_ns),
    ])
}

fn uint(j: &Json) -> Result<u64, String> {
    match *j {
        Json::UInt(u) => Ok(u),
        _ => Err(format!("expected an unsigned integer, got {}", j.render())),
    }
}

fn str_field(j: &Json) -> Result<&str, String> {
    match j {
        Json::Str(s) => Ok(s),
        _ => Err(format!("expected a string, got {}", j.render())),
    }
}

fn items(j: &Json) -> Result<&[Json], String> {
    match j {
        Json::Arr(v) => Ok(v),
        _ => Err(format!("expected an array, got {}", j.render())),
    }
}

fn get<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    let Json::Obj(pairs) = obj else { return Err("checkpoint node must be an object".into()) };
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("checkpoint is missing `{key}`"))
}

fn request_from(j: &Json) -> Result<Request, String> {
    let [id, tenant, class, arrival_ns] = items(j)? else {
        return Err("a request must be a 4-tuple".into());
    };
    Ok(Request {
        id: uint(id)?,
        tenant: uint(tenant)? as usize,
        class: uint(class)? as u16,
        arrival_ns: uint(arrival_ns)?,
    })
}

fn uint_vec(j: &Json) -> Result<Vec<u64>, String> {
    items(j)?.iter().map(uint).collect()
}

impl Checkpoint {
    /// Serializes the checkpoint as a self-describing JSON document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let uvec = |v: &[u64]| Json::arr(v.iter().map(|&x| Json::from(x)));
        Json::obj([
            ("checkpoint", Json::from(CHECKPOINT_SCHEMA)),
            ("scenario", Json::from(self.scenario.as_str())),
            ("policy", Json::from(self.policy.as_str())),
            ("seed", Json::from(self.seed)),
            ("load_bits", Json::from(self.load_bits)),
            ("duration_ns", Json::from(self.duration_ns)),
            ("faults", Json::from(self.faults.as_str())),
            ("channel", Json::from(self.channel.as_str())),
            ("vtime", Json::from(self.vtime)),
            ("rounds", Json::from(self.rounds)),
            ("next_id", Json::from(self.next_id)),
            (
                "traffic",
                Json::obj([
                    ("rng", uvec(&self.traffic.rng)),
                    ("t_ns", Json::from(self.traffic.t_ns)),
                    (
                        "peeked",
                        match self.traffic.peeked {
                            None => Json::Null,
                            Some(a) => Json::arr([
                                Json::from(a.at_ns),
                                Json::from(a.tenant as u64),
                                Json::from(u64::from(a.class)),
                            ]),
                        },
                    ),
                ]),
            ),
            ("queue", Json::arr(self.queue.iter().map(request_json))),
            (
                "admission",
                Json::arr(self.admission.iter().map(|a| {
                    Json::arr([
                        Json::from(a.offered),
                        Json::from(a.admitted),
                        Json::from(a.rejected_capacity),
                        Json::from(a.rejected_quota),
                    ])
                })),
            ),
            (
                "retries",
                Json::arr(self.retries.iter().map(|r| {
                    Json::arr([
                        Json::from(r.ready_at),
                        Json::from(u64::from(r.attempt)),
                        request_json(&r.req),
                    ])
                })),
            ),
            ("completed", uvec(&self.completed)),
            ("failed", uvec(&self.failed)),
            ("retried", uvec(&self.retried)),
            ("degraded", uvec(&self.degraded)),
            ("splits", Json::arr(self.splits.iter().map(LatencySplit::to_json))),
            (
                "timeline",
                Json::obj([
                    ("to_dpu_bits", Json::from(self.timeline.to_dpu_ns.to_bits())),
                    ("kernel_bits", Json::from(self.timeline.kernel_ns.to_bits())),
                    ("from_dpu_bits", Json::from(self.timeline.from_dpu_ns.to_bits())),
                    ("launches", Json::from(u64::from(self.timeline.launches))),
                ]),
            ),
            ("policy_state", self.policy_state.clone()),
            (
                "seen",
                Json::arr(
                    self.seen
                        .iter()
                        .map(|c| Json::arr(c.iter().map(|&s| Json::from(u64::from(s))))),
                ),
            ),
            ("outage_cursor", Json::from(self.outage_cursor as u64)),
            (
                "active_outages",
                Json::arr(self.active_outages.iter().map(|&(rank, until)| {
                    Json::arr([Json::from(u64::from(rank)), Json::from(until)])
                })),
            ),
            ("fault_counts", uvec(&self.fault_counts)),
        ])
    }

    /// Rebuilds a checkpoint from [`Checkpoint::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed or missing field.
    pub fn from_json(doc: &Json) -> Result<Checkpoint, String> {
        let schema = str_field(get(doc, "checkpoint")?)?;
        if schema != CHECKPOINT_SCHEMA {
            return Err(format!("unsupported checkpoint schema `{schema}`"));
        }
        let traffic = get(doc, "traffic")?;
        let rng_words = uint_vec(get(traffic, "rng")?)?;
        let rng: [u64; 4] =
            rng_words.try_into().map_err(|_| "traffic rng must hold 4 words".to_string())?;
        let peeked = match get(traffic, "peeked")? {
            Json::Null => None,
            j => {
                let [at_ns, tenant, class] = items(j)? else {
                    return Err("peeked arrival must be a 3-tuple".into());
                };
                Some(Arrival {
                    at_ns: uint(at_ns)?,
                    tenant: uint(tenant)? as usize,
                    class: uint(class)? as u16,
                })
            }
        };
        let admission = items(get(doc, "admission")?)?
            .iter()
            .map(|j| {
                let [offered, admitted, cap, quota] = items(j)? else {
                    return Err("admission counters must be a 4-tuple".to_string());
                };
                Ok(TenantAdmission {
                    offered: uint(offered)?,
                    admitted: uint(admitted)?,
                    rejected_capacity: uint(cap)?,
                    rejected_quota: uint(quota)?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let retries = items(get(doc, "retries")?)?
            .iter()
            .map(|j| {
                let [ready_at, attempt, req] = items(j)? else {
                    return Err("a retry must be a 3-tuple".to_string());
                };
                Ok(RetryEntry {
                    ready_at: uint(ready_at)?,
                    attempt: uint(attempt)? as u32,
                    req: request_from(req)?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let splits = items(get(doc, "splits")?)?
            .iter()
            .map(LatencySplit::from_json)
            .collect::<Result<Vec<_>, String>>()?;
        let timeline_node = get(doc, "timeline")?;
        let timeline = ExecutionTimeline {
            to_dpu_ns: f64::from_bits(uint(get(timeline_node, "to_dpu_bits")?)?),
            kernel_ns: f64::from_bits(uint(get(timeline_node, "kernel_bits")?)?),
            from_dpu_ns: f64::from_bits(uint(get(timeline_node, "from_dpu_bits")?)?),
            launches: uint(get(timeline_node, "launches")?)? as u32,
            // The serving loop prices rounds itself; the overlapped wall
            // clock is derived per round and never checkpointed.
            end_ns: 0.0,
        };
        let seen = items(get(doc, "seen")?)?
            .iter()
            .map(|c| Ok(uint_vec(c)?.into_iter().map(|s| s as u16).collect()))
            .collect::<Result<Vec<Vec<u16>>, String>>()?;
        let active_outages = items(get(doc, "active_outages")?)?
            .iter()
            .map(|j| {
                let [rank, until] = items(j)? else {
                    return Err("an active outage must be a pair".to_string());
                };
                Ok((uint(rank)? as u32, uint(until)?))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let fault_counts_vec = uint_vec(get(doc, "fault_counts")?)?;
        let fault_counts: [u64; 3] = fault_counts_vec
            .try_into()
            .map_err(|_| "fault_counts must hold 3 entries".to_string())?;
        Ok(Checkpoint {
            scenario: str_field(get(doc, "scenario")?)?.to_string(),
            policy: str_field(get(doc, "policy")?)?.to_string(),
            seed: uint(get(doc, "seed")?)?,
            load_bits: uint(get(doc, "load_bits")?)?,
            duration_ns: uint(get(doc, "duration_ns")?)?,
            faults: str_field(get(doc, "faults")?)?.to_string(),
            channel: str_field(get(doc, "channel")?)?.to_string(),
            vtime: uint(get(doc, "vtime")?)?,
            rounds: uint(get(doc, "rounds")?)?,
            next_id: uint(get(doc, "next_id")?)?,
            traffic: TrafficState { rng, t_ns: uint(get(traffic, "t_ns")?)?, peeked },
            queue: items(get(doc, "queue")?)?
                .iter()
                .map(request_from)
                .collect::<Result<Vec<_>, String>>()?,
            admission,
            retries,
            completed: uint_vec(get(doc, "completed")?)?,
            failed: uint_vec(get(doc, "failed")?)?,
            retried: uint_vec(get(doc, "retried")?)?,
            degraded: uint_vec(get(doc, "degraded")?)?,
            splits,
            timeline,
            policy_state: get(doc, "policy_state")?.clone(),
            seen,
            outage_cursor: uint(get(doc, "outage_cursor")?)? as usize,
            active_outages,
            fault_counts,
        })
    }

    /// Checks that this checkpoint belongs to the run described by
    /// `(scenario, policy, seed, load, duration_ns, faults, channel)` —
    /// resuming under different knobs would silently produce a
    /// Franken-run, so every identity field must match.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first mismatching field.
    #[allow(clippy::too_many_arguments)]
    pub fn validate(
        &self,
        scenario: &str,
        policy: &str,
        seed: u64,
        load: f64,
        duration_ns: u64,
        faults: &str,
        channel: &str,
    ) -> Result<(), String> {
        let check = |name: &str, got: &str, want: &str| {
            if got == want {
                Ok(())
            } else {
                Err(format!("checkpoint {name} is `{got}` but the run wants `{want}`"))
            }
        };
        check("scenario", &self.scenario, scenario)?;
        check("policy", &self.policy, policy)?;
        check("faults", &self.faults, faults)?;
        check("channel", &self.channel, channel)?;
        if self.seed != seed {
            return Err(format!("checkpoint seed is {} but the run wants {seed}", self.seed));
        }
        if self.load_bits != load.to_bits() {
            return Err(format!(
                "checkpoint load is {} but the run wants {load}",
                f64::from_bits(self.load_bits)
            ));
        }
        if self.duration_ns != duration_ns {
            return Err(format!(
                "checkpoint duration is {} ns but the run wants {duration_ns} ns",
                self.duration_ns
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut split = LatencySplit::default();
        split.record(10, 20, 30);
        Checkpoint {
            scenario: "faulty".into(),
            policy: "fifo".into(),
            seed: 7,
            load_bits: 1.5f64.to_bits(),
            duration_ns: 5_000_000,
            faults: "seed=1,transient=5,stuck=0,timeout_us=200,retries=3,backoff_us=50,outages=0,outage_ms=1,rank_dpus=64".into(),
            channel: "blocking".into(),
            vtime: 123_456,
            rounds: 17,
            next_id: 42,
            traffic: TrafficState {
                rng: [u64::MAX, 1, 2, 3],
                t_ns: 120_000,
                peeked: Some(Arrival { at_ns: 130_000, tenant: 1, class: 5 }),
            },
            queue: vec![Request { id: 40, tenant: 0, class: 2, arrival_ns: 119_000 }],
            admission: vec![
                TenantAdmission { offered: 30, admitted: 28, rejected_capacity: 1, rejected_quota: 1 },
                TenantAdmission { offered: 12, admitted: 12, ..Default::default() },
            ],
            retries: vec![RetryEntry {
                ready_at: 125_000,
                attempt: 2,
                req: Request { id: 33, tenant: 1, class: 4, arrival_ns: 100_000 },
            }],
            completed: vec![20, 10],
            failed: vec![1, 0],
            retried: vec![3, 1],
            degraded: vec![2, 0],
            splits: vec![LatencySplit::default(), {
                let mut s = LatencySplit::default();
                s.record(10, 20, 30);
                s
            }],
            timeline: ExecutionTimeline {
                to_dpu_ns: 0.1 + 0.2, // deliberately non-representable
                kernel_ns: 12_345.678,
                from_dpu_ns: 9.0,
                launches: 17,
                end_ns: 0.0,
            },
            // Canonical snapshot shape: non-negative credits are UInt
            // (what JSON text parses back to), negatives stay Int.
            policy_state: Json::arr([Json::UInt(3), Json::from(-1i64)]),
            seen: vec![vec![0, 1, 65535, 65535], vec![2, 2, 2, 2]],
            outage_cursor: 1,
            active_outages: vec![(1, 2_000_000)],
            fault_counts: [5, 2, 8],
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let ck = sample();
        let text = ck.to_json().render_pretty();
        let back = Checkpoint::from_json(&Json::parse(&text).unwrap()).unwrap();
        // Everything that matters for byte-identical resume.
        assert_eq!(back.scenario, ck.scenario);
        assert_eq!(back.traffic, ck.traffic);
        assert_eq!(back.queue, ck.queue);
        assert_eq!(back.admission, ck.admission);
        assert_eq!(back.retries, ck.retries);
        assert_eq!(back.completed, ck.completed);
        assert_eq!(back.seen, ck.seen);
        assert_eq!(back.active_outages, ck.active_outages);
        assert_eq!(back.fault_counts, ck.fault_counts);
        assert_eq!(back.policy_state, ck.policy_state);
        // Floats round-trip bit-exactly, not just approximately.
        assert_eq!(back.timeline.to_dpu_ns.to_bits(), ck.timeline.to_dpu_ns.to_bits());
        assert_eq!(back.timeline.kernel_ns.to_bits(), ck.timeline.kernel_ns.to_bits());
        // And a second render is byte-identical (stable serialization).
        assert_eq!(back.to_json().render_pretty(), text);
    }

    #[test]
    fn validate_catches_every_identity_mismatch() {
        let ck = sample();
        let ok = ck.validate("faulty", "fifo", 7, 1.5, 5_000_000, &ck.faults, "blocking");
        assert!(ok.is_ok(), "{ok:?}");
        assert!(ck.validate("tiny", "fifo", 7, 1.5, 5_000_000, &ck.faults, "blocking").is_err());
        assert!(ck
            .validate("faulty", "size_class", 7, 1.5, 5_000_000, &ck.faults, "blocking")
            .is_err());
        assert!(ck.validate("faulty", "fifo", 8, 1.5, 5_000_000, &ck.faults, "blocking").is_err());
        assert!(ck.validate("faulty", "fifo", 7, 2.0, 5_000_000, &ck.faults, "blocking").is_err());
        assert!(ck.validate("faulty", "fifo", 7, 1.5, 9, &ck.faults, "blocking").is_err());
        assert!(ck.validate("faulty", "fifo", 7, 1.5, 5_000_000, "none", "blocking").is_err());
        let err =
            ck.validate("faulty", "fifo", 7, 1.5, 5_000_000, &ck.faults, "overlapped").unwrap_err();
        assert!(err.contains("channel"), "{err}");
    }

    #[test]
    fn from_json_rejects_foreign_documents() {
        assert!(Checkpoint::from_json(&Json::Null).is_err());
        assert!(Checkpoint::from_json(&Json::obj([("checkpoint", Json::from("v999"))])).is_err());
        let mut doc = sample().to_json();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "retries");
        }
        let err = Checkpoint::from_json(&doc).unwrap_err();
        assert!(err.contains("retries"), "{err}");
    }
}
