//! The serving runtime: a deterministic virtual-time event loop.
//!
//! One run is a pure function of `(scenario, options)`. Arrivals stream
//! from the seeded [`TrafficGen`]; the loop then alternates between
//! admitting arrivals whose timestamp has passed and dispatching one
//! *round* — ready retries first, then a batch drained by the scheduling
//! policy, packed onto the slots of the currently *healthy* DPUs. Each
//! round's cost comes from cycle-level simulation of its per-DPU
//! compositions, memoized in a [`CompositionCache`]; only first-seen
//! compositions are simulated, and those simulations are the one thing
//! `--threads` parallelizes (via the order-preserving
//! [`JobRunner::map`]), so results are byte-identical at any worker
//! count.
//!
//! ## Faults, retries, elastic capacity
//!
//! With a [`FaultSpec`], each round draws per-DPU faults from a stream
//! keyed on the round index (see [`FaultPlan::round_faults`]) and walks
//! a pre-drawn rank-outage schedule. A faulted request is retried with
//! exponential virtual-time backoff up to the spec's budget, then
//! counted `failed`; an offline rank shrinks the healthy set, so the
//! loop keeps serving on degraded capacity and re-absorbs the rank when
//! it rejoins. When every rank is down the loop stalls to the earliest
//! rejoin instead of deadlocking. A fault-free spec reduces exactly to
//! the no-spec path — the differential suite pins the equivalence
//! byte-for-byte.
//!
//! ## Checkpoint/restore
//!
//! [`run_scenario_with_checkpoints`] emits a [`Checkpoint`] at the top
//! of the loop each time virtual time crosses a multiple of the cadence;
//! [`resume_scenario`] rebuilds the loop state from one and continues.
//! Because the cut is taken before any event at that virtual time is
//! processed, a resumed run replays the identical event sequence and
//! renders byte-identical results JSON.

use std::collections::BTreeSet;

use pimulator::jobs::JobRunner;
use pimulator::pim_dpu::{DpuConfig, FaultKind, SimError};
use pimulator::pim_host::{ChannelMode, ExecutionTimeline, TransferConfig};
use pimulator::pim_trace::MetricsSink;
use pimulator::trace::JobTrace;

use crate::checkpoint::{Checkpoint, RetryEntry};
use crate::fault::{FaultPlan, FaultSpec};
use crate::kernels::{
    profile_composition, request_classes, CompositionCache, EMPTY_SLOT, SLOTS_PER_DPU,
    TASKLETS_PER_SLOT,
};
use crate::queue::{AdmissionQueue, TenantAdmission};
use crate::scenario::Scenario;
use crate::sched::{policy_by_name_with_weights, SchedulerPolicy};
use crate::slo::LatencySplit;
use crate::traffic::{to_request, TrafficGen};

/// Knobs of one serving run (everything the CLI exposes).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Traffic seed.
    pub seed: u64,
    /// Simulated run length in ms; 0 uses the scenario default.
    pub duration_ms: u64,
    /// Load multiplier on the scenario's base arrival rate.
    pub load: f64,
    /// Worker threads for composition profiling (`None` ⇒ default).
    pub threads: Option<usize>,
    /// Scheduling-policy override (`None` uses the scenario's).
    pub policy: Option<String>,
    /// Per-DPU event-ring capacity for profiling traces; 0 disables.
    pub trace_capacity: usize,
    /// Fault campaign; `None` (or a spec where
    /// [`FaultSpec::is_none`] holds) injects nothing.
    pub faults: Option<FaultSpec>,
    /// CPU↔DPU channel scheduling mode. [`ChannelMode::Blocking`] (the
    /// default) prices rounds as the serial `to + kernel + from` sum —
    /// the pre-v2 numbers, byte-for-byte. [`ChannelMode::Overlapped`]
    /// hides the push under the previous kernel phase, so a round spans
    /// `max(to, kernel) + from` and only the *unhidden* transfer tail
    /// lands in request latencies. [`ChannelMode::Broadcast`] prices like
    /// blocking here: serving pushes per-request payloads, which are
    /// distinct per DPU, so there is nothing to broadcast.
    pub channel: ChannelMode,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            seed: 42,
            duration_ms: 0,
            load: 1.0,
            threads: None,
            policy: None,
            trace_capacity: 0,
            faults: None,
            channel: ChannelMode::Blocking,
        }
    }
}

/// Per-tenant results of one run.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    /// Tenant name from the scenario.
    pub name: &'static str,
    /// Traffic share (arrival-side weight) from the scenario.
    pub share: u32,
    /// Weighted-fair scheduling weight from the scenario.
    pub weight: u32,
    /// Admission counters (offered / admitted / rejected, by reason).
    pub admission: TenantAdmission,
    /// Requests that ran to completion.
    pub completed: u64,
    /// Requests that exhausted the retry budget and left the system.
    pub failed: u64,
    /// Retry re-dispatches (one per failed attempt that stayed within
    /// budget).
    pub retried: u64,
    /// Completions served while at least one rank was offline.
    pub degraded: u64,
    /// Completions per second of simulated time.
    pub throughput_rps: f64,
    /// Queue / transfer / execute / total latency histograms.
    pub latency: LatencySplit,
}

/// The full, deterministic result of one serving run.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Scenario name.
    pub scenario: &'static str,
    /// The policy that actually ran (after any override).
    pub policy: &'static str,
    /// Traffic seed.
    pub seed: u64,
    /// Load multiplier.
    pub load: f64,
    /// Simulated run length, ns (the arrival window; completions may
    /// land later — the loop drains the queue).
    pub duration_ns: u64,
    /// DPUs in the rank.
    pub n_dpus: u32,
    /// Canonical fault-spec label (`"none"` without a campaign).
    pub faults: String,
    /// Channel-mode label the run priced rounds under (`"blocking"`,
    /// `"broadcast"`, `"overlapped"`).
    pub channel: &'static str,
    /// Per-tenant outcomes, in scenario order.
    pub tenants: Vec<TenantOutcome>,
    /// Accumulated transfer/kernel split across all rounds.
    pub timeline: ExecutionTimeline,
    /// Serving counters (`serve_*`), deterministic iteration order.
    pub metrics: MetricsSink,
    /// Scheduling rounds dispatched.
    pub rounds: u64,
    /// Distinct DPU compositions simulated (cache size).
    pub distinct_compositions: usize,
    /// Profiling event traces, one per distinct composition, present
    /// when [`ServeOptions::trace_capacity`] was non-zero. A *resumed*
    /// run only holds traces of compositions first touched after the
    /// cut (profiles re-simulate; traces are not checkpointed).
    pub traces: Vec<JobTrace>,
}

impl ServeOutcome {
    /// Requests offered across all tenants.
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.tenants.iter().map(|t| t.admission.offered).sum()
    }

    /// Requests admitted across all tenants.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.tenants.iter().map(|t| t.admission.admitted).sum()
    }

    /// Requests rejected across all tenants (both reasons).
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.tenants.iter().map(|t| t.admission.rejected()).sum()
    }

    /// Requests completed across all tenants.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.tenants.iter().map(|t| t.completed).sum()
    }

    /// Requests that exhausted their retry budget, across all tenants.
    #[must_use]
    pub fn failed(&self) -> u64 {
        self.tenants.iter().map(|t| t.failed).sum()
    }

    /// Retry re-dispatches across all tenants.
    #[must_use]
    pub fn retried(&self) -> u64 {
        self.tenants.iter().map(|t| t.retried).sum()
    }

    /// Degraded-capacity completions across all tenants.
    #[must_use]
    pub fn degraded(&self) -> u64 {
        self.tenants.iter().map(|t| t.degraded).sum()
    }

    /// Aggregate completions per simulated second.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        self.tenants.iter().map(|t| t.throughput_rps).sum()
    }

    /// All tenants' latency populations merged into one split (for
    /// whole-scenario percentiles like the saturation sweep's p99).
    #[must_use]
    pub fn aggregate_latency(&self) -> LatencySplit {
        let mut all = LatencySplit::default();
        for t in &self.tenants {
            all.merge(&t.latency);
        }
        all
    }
}

/// The run length in ns after applying the scenario default.
#[must_use]
pub fn resolved_duration_ns(scenario: &Scenario, opts: &ServeOptions) -> u64 {
    let ms = if opts.duration_ms > 0 { opts.duration_ms } else { scenario.default_duration_ms };
    ms * 1_000_000
}

/// The policy name that will run (after any override).
#[must_use]
pub fn resolved_policy_name<'a>(scenario: &'a Scenario, opts: &'a ServeOptions) -> &'a str {
    opts.policy.as_deref().unwrap_or(scenario.policy)
}

/// The canonical fault label of a run (`"none"` without a campaign —
/// also for an explicit all-zero spec, so the two render identically).
#[must_use]
pub fn fault_label(opts: &ServeOptions) -> String {
    opts.faults.map_or_else(|| "none".to_string(), |s| s.label())
}

/// The canonical channel-mode label of a run.
#[must_use]
pub fn channel_label(opts: &ServeOptions) -> &'static str {
    opts.channel.label()
}

/// The live state of one serving run between rounds — everything a
/// [`Checkpoint`] captures.
struct LoopState<'a> {
    gen: TrafficGen<'a>,
    next_id: u64,
    queue: AdmissionQueue,
    policy: Box<dyn SchedulerPolicy>,
    retries: Vec<RetryEntry>,
    splits: Vec<LatencySplit>,
    completed: Vec<u64>,
    failed: Vec<u64>,
    retried: Vec<u64>,
    degraded: Vec<u64>,
    timeline: ExecutionTimeline,
    rounds: u64,
    vtime: u64,
    seen: BTreeSet<Vec<u16>>,
    outage_cursor: usize,
    active_outages: Vec<(u32, u64)>,
    fault_counts: [u64; 3],
}

impl<'a> LoopState<'a> {
    fn new(scenario: &'a Scenario, opts: &ServeOptions, duration_ns: u64) -> Self {
        let weights: Vec<u64> = scenario.tenants.iter().map(|t| u64::from(t.weight)).collect();
        let policy_name = resolved_policy_name(scenario, opts);
        let policy = policy_by_name_with_weights(policy_name, &weights)
            .unwrap_or_else(|| panic!("unknown scheduling policy {policy_name}"));
        let quotas: Vec<usize> = scenario.tenants.iter().map(|t| t.quota).collect();
        let n = scenario.tenants.len();
        LoopState {
            gen: TrafficGen::new(scenario, opts.seed, opts.load, duration_ns),
            next_id: 0,
            queue: AdmissionQueue::new(scenario.queue_capacity, quotas),
            policy,
            retries: Vec::new(),
            splits: vec![LatencySplit::default(); n],
            completed: vec![0; n],
            failed: vec![0; n],
            retried: vec![0; n],
            degraded: vec![0; n],
            timeline: ExecutionTimeline::default(),
            rounds: 0,
            vtime: 0,
            seen: BTreeSet::new(),
            outage_cursor: 0,
            active_outages: Vec::new(),
            fault_counts: [0; 3],
        }
    }

    fn from_checkpoint(
        scenario: &'a Scenario,
        opts: &ServeOptions,
        duration_ns: u64,
        ck: &Checkpoint,
    ) -> Result<Self, String> {
        let n = scenario.tenants.len();
        for (label, len) in [
            ("admission", ck.admission.len()),
            ("completed", ck.completed.len()),
            ("failed", ck.failed.len()),
            ("retried", ck.retried.len()),
            ("degraded", ck.degraded.len()),
            ("splits", ck.splits.len()),
        ] {
            if len != n {
                return Err(format!("checkpoint {label} holds {len} tenants, scenario has {n}"));
            }
        }
        let weights: Vec<u64> = scenario.tenants.iter().map(|t| u64::from(t.weight)).collect();
        let policy_name = resolved_policy_name(scenario, opts);
        let mut policy = policy_by_name_with_weights(policy_name, &weights)
            .ok_or_else(|| format!("unknown scheduling policy {policy_name}"))?;
        policy.restore(&ck.policy_state)?;
        let quotas: Vec<usize> = scenario.tenants.iter().map(|t| t.quota).collect();
        Ok(LoopState {
            gen: TrafficGen::restore(scenario, opts.load, duration_ns, &ck.traffic),
            next_id: ck.next_id,
            queue: AdmissionQueue::restore(
                scenario.queue_capacity,
                quotas,
                ck.queue.clone(),
                ck.admission.clone(),
            ),
            policy,
            retries: ck.retries.clone(),
            splits: ck.splits.clone(),
            completed: ck.completed.clone(),
            failed: ck.failed.clone(),
            retried: ck.retried.clone(),
            degraded: ck.degraded.clone(),
            timeline: ck.timeline,
            rounds: ck.rounds,
            vtime: ck.vtime,
            seen: ck.seen.iter().cloned().collect(),
            outage_cursor: ck.outage_cursor,
            active_outages: ck.active_outages.clone(),
            fault_counts: ck.fault_counts,
        })
    }

    fn to_checkpoint(
        &self,
        scenario: &Scenario,
        opts: &ServeOptions,
        duration_ns: u64,
    ) -> Checkpoint {
        Checkpoint {
            scenario: scenario.name.to_string(),
            policy: self.policy.name().to_string(),
            seed: opts.seed,
            load_bits: opts.load.to_bits(),
            duration_ns,
            faults: fault_label(opts),
            channel: channel_label(opts).to_string(),
            vtime: self.vtime,
            rounds: self.rounds,
            next_id: self.next_id,
            traffic: self.gen.state(),
            queue: self.queue.iter().copied().collect(),
            admission: self.queue.stats().to_vec(),
            retries: self.retries.clone(),
            completed: self.completed.clone(),
            failed: self.failed.clone(),
            retried: self.retried.clone(),
            degraded: self.degraded.clone(),
            splits: self.splits.clone(),
            timeline: self.timeline,
            policy_state: self.policy.snapshot(),
            seen: self.seen.iter().cloned().collect(),
            outage_cursor: self.outage_cursor,
            active_outages: self.active_outages.clone(),
            fault_counts: self.fault_counts,
        }
    }
}

/// Runs one serving scenario to completion (the arrival window closes
/// after `duration`, then the queue and retry set drain; every admitted
/// request ends exactly once as completed or failed).
///
/// # Errors
///
/// Propagates a [`SimError`] from composition profiling — a staged
/// transfer out of range or a launch failure.
///
/// # Panics
///
/// Panics if the policy name (override or scenario default) is unknown
/// or the load multiplier is not positive; the CLI layer validates both
/// before calling.
pub fn run_scenario(scenario: &Scenario, opts: &ServeOptions) -> Result<ServeOutcome, SimError> {
    run_scenario_with_checkpoints(scenario, opts, 0, &mut |_| {})
}

/// [`run_scenario`], additionally emitting a [`Checkpoint`] to `sink`
/// each time virtual time crosses a multiple of `every_ms` (0 disables).
/// Checkpoints are cut at the top of the loop before any event at that
/// virtual time is processed, so resuming from one replays the identical
/// event sequence.
///
/// # Errors
///
/// Propagates a [`SimError`] from composition profiling.
///
/// # Panics
///
/// As [`run_scenario`].
pub fn run_scenario_with_checkpoints(
    scenario: &Scenario,
    opts: &ServeOptions,
    every_ms: u64,
    sink: &mut dyn FnMut(&Checkpoint),
) -> Result<ServeOutcome, SimError> {
    let duration_ns = resolved_duration_ns(scenario, opts);
    let st = LoopState::new(scenario, opts, duration_ns);
    run_loop(scenario, opts, duration_ns, st, every_ms, sink)
}

/// Continues a run from a [`Checkpoint`] to completion. The caller is
/// expected to [`Checkpoint::validate`] against the run's identity
/// first; `every_ms`/`sink` behave as in
/// [`run_scenario_with_checkpoints`].
///
/// # Errors
///
/// Propagates a [`SimError`] from composition profiling.
///
/// # Panics
///
/// Panics if the checkpoint is structurally incompatible with the
/// scenario (wrong tenant count, foreign policy state) — identity
/// mismatches the caller should have caught via [`Checkpoint::validate`].
pub fn resume_scenario(
    scenario: &Scenario,
    opts: &ServeOptions,
    ck: &Checkpoint,
    every_ms: u64,
    sink: &mut dyn FnMut(&Checkpoint),
) -> Result<ServeOutcome, SimError> {
    let duration_ns = resolved_duration_ns(scenario, opts);
    let st = LoopState::from_checkpoint(scenario, opts, duration_ns, ck)
        .unwrap_or_else(|e| panic!("checkpoint does not fit the run: {e}"));
    run_loop(scenario, opts, duration_ns, st, every_ms, sink)
}

#[allow(clippy::too_many_lines)]
fn run_loop(
    scenario: &Scenario,
    opts: &ServeOptions,
    duration_ns: u64,
    mut st: LoopState<'_>,
    every_ms: u64,
    sink: &mut dyn FnMut(&Checkpoint),
) -> Result<ServeOutcome, SimError> {
    let spec = opts.faults.unwrap_or_else(FaultSpec::none);
    let plan = FaultPlan::generate(spec, scenario.n_dpus, duration_ns);
    let stuck_timeout_ns = spec.stuck_timeout_us * 1000;
    let backoff_ns = spec.backoff_us * 1000;

    let mut cfg = DpuConfig::paper_baseline(SLOTS_PER_DPU as u32 * TASKLETS_PER_SLOT);
    if scenario.mmu {
        cfg = cfg.with_paper_mmu();
    }
    let xfer = TransferConfig::paper();
    let runner = JobRunner::new(opts.threads);
    let mut cache = CompositionCache::new();
    let mut traces: Vec<JobTrace> = Vec::new();
    let classes = request_classes();

    let every = every_ms * 1_000_000;
    let next_cut = |vtime: u64| (vtime / every.max(1) + 1) * every;
    let mut next_ckpt = if every > 0 { next_cut(st.vtime) } else { u64::MAX };

    loop {
        // Cut a checkpoint before processing anything at this virtual
        // time — the resumed loop starts exactly here.
        if st.vtime >= next_ckpt {
            sink(&st.to_checkpoint(scenario, opts, duration_ns));
            next_ckpt = next_cut(st.vtime);
        }

        // Elastic capacity: expire outages whose rank rejoined, activate
        // the ones whose onset has passed, then rebuild the healthy set.
        st.active_outages.retain(|&(_, until)| until > st.vtime);
        while st.outage_cursor < plan.outages().len()
            && plan.outages()[st.outage_cursor].at_ns <= st.vtime
        {
            let o = plan.outages()[st.outage_cursor];
            st.outage_cursor += 1;
            if o.until_ns > st.vtime {
                st.active_outages.push((o.rank, o.until_ns));
            }
        }
        let healthy: Vec<u32> = (0..scenario.n_dpus)
            .filter(|&d| {
                let rank = plan.rank_of(d);
                !st.active_outages.iter().any(|&(r, _)| r == rank)
            })
            .collect();

        // Admit everything that has arrived by now; rejects are counted
        // inside the queue, never dropped silently.
        while let Some(a) = st.gen.peek() {
            if a.at_ns > st.vtime {
                break;
            }
            st.gen.next_arrival();
            st.queue.offer(to_request(st.next_id, a));
            st.next_id += 1;
        }

        let ready_retries = st.retries.iter().take_while(|r| r.ready_at <= st.vtime).count();
        if st.queue.is_empty() && ready_retries == 0 {
            // Nothing dispatchable: jump to the next event, or finish.
            let next_arrival = st.gen.peek().map(|a| a.at_ns);
            let next_retry = st.retries.first().map(|r| r.ready_at);
            let Some(at) = next_arrival.into_iter().chain(next_retry).min() else { break };
            st.vtime = at;
            continue;
        }
        if healthy.is_empty() {
            // Every rank is offline: stall to the earliest rejoin rather
            // than deadlock (there must be one — the outage put us here).
            st.vtime = st
                .active_outages
                .iter()
                .map(|&(_, until)| until)
                .min()
                .expect("an empty healthy set implies an active outage");
            continue;
        }

        // One round: ready retries first (they already waited out their
        // backoff), then a fresh batch from the policy, packed slot by
        // slot onto the healthy DPUs.
        let capacity = healthy.len() * SLOTS_PER_DPU;
        let mut batch = Vec::with_capacity(capacity);
        let mut attempts: Vec<u32> = Vec::with_capacity(capacity);
        for e in st.retries.drain(..ready_retries.min(capacity)) {
            batch.push(e.req);
            attempts.push(e.attempt);
        }
        if batch.len() < capacity && !st.queue.is_empty() {
            let fresh = st.policy.next_batch(&mut st.queue, capacity - batch.len());
            attempts.resize(attempts.len() + fresh.len(), 0);
            batch.extend(fresh);
        }
        assert!(!batch.is_empty(), "a dispatchable round drains at least one request");
        let mut comps = vec![vec![EMPTY_SLOT; SLOTS_PER_DPU]; healthy.len()];
        for (i, r) in batch.iter().enumerate() {
            comps[i / SLOTS_PER_DPU][i % SLOTS_PER_DPU] = r.class;
        }

        // Profile each composition in *canonical* (sorted) form: the
        // cycle cost of a co-located image depends on the multiset of
        // kernels sharing the DPU, not on which slot each occupies, so
        // canonicalizing collapses the cache keyspace from ordered
        // tuples to multisets. `assign` maps each original slot to its
        // position in the canonical form (duplicates taken in order) so
        // per-request execute times read the right profile entry.
        let canon: Vec<Vec<u16>> = comps
            .iter()
            .map(|c| {
                let mut s = c.clone();
                s.sort_unstable();
                s
            })
            .collect();
        let assign: Vec<Vec<usize>> = comps
            .iter()
            .zip(&canon)
            .map(|(orig, c)| {
                let mut used = vec![false; c.len()];
                orig.iter()
                    .map(|&cls| {
                        let j = c
                            .iter()
                            .enumerate()
                            .position(|(j, &cc)| cc == cls && !used[j])
                            .expect("canonical form is a permutation");
                        used[j] = true;
                        j
                    })
                    .collect()
            })
            .collect();

        // Simulate first-seen compositions, in sorted order on the
        // order-preserving runner so threading cannot reorder results.
        // `seen` tracks every key ever cached so a resumed run (which
        // re-simulates on demand) still reports the uninterrupted
        // distinct-composition count.
        let mut missing: Vec<Vec<u16>> =
            canon.iter().filter(|c| !cache.contains_key(c.as_slice())).cloned().collect();
        missing.sort_unstable();
        missing.dedup();
        let profiled =
            runner.map(&missing, |_, comp| profile_composition(comp, &cfg, opts.trace_capacity));
        for (comp, res) in missing.into_iter().zip(profiled) {
            let (profile, trace) = res?;
            st.seen.insert(comp.clone());
            cache.insert(comp, profile);
            traces.extend(trace);
        }

        // The round's cost: parallel transfers charge the largest per-DPU
        // chunk (as `push_to_mram` does); the kernel phase is the slowest
        // DPU's makespan — or the watchdog timeout, if a DPU hung.
        let dpu_bytes = |occupied: fn(&crate::kernels::RequestClass) -> u32| {
            comps
                .iter()
                .map(|comp| {
                    comp.iter()
                        .filter(|&&c| c != EMPTY_SLOT)
                        .map(|&c| u64::from(occupied(&classes[c as usize])))
                        .sum::<u64>()
                })
                .max()
                .unwrap_or(0)
        };
        let to_ns = xfer.to_dpu_ns(dpu_bytes(|c| c.input_bytes));
        let from_ns = xfer.from_dpu_ns(dpu_bytes(|c| c.output_bytes));
        let exec_max_ns = canon
            .iter()
            .filter(|c| c.iter().any(|&s| s != EMPTY_SLOT))
            .map(|c| cache[c].makespan_ns)
            .fold(0.0f64, f64::max);

        // Draw this round's faults over the occupied DPUs (global ids).
        let occupied_dpus: Vec<u32> = comps
            .iter()
            .enumerate()
            .filter(|(_, c)| c.iter().any(|&s| s != EMPTY_SLOT))
            .map(|(i, _)| healthy[i])
            .collect();
        let faults = plan.round_faults(st.rounds, &occupied_dpus);
        let any_stuck = faults.iter().any(|(_, k)| matches!(k, FaultKind::Stuck { .. }));
        let kernel_ns =
            if any_stuck { exec_max_ns.max(stuck_timeout_ns as f64) } else { exec_max_ns };

        // Overlapped channel: the push streams in while the *previous*
        // round's kernels run, so only its unhidden tail extends the
        // round — `max(to, kernel) + from`. The pull stays synchronous
        // in every mode (the paper's read-back asymmetry). Blocking and
        // broadcast price the serial sum: per-request payloads are
        // distinct per DPU, so a serving round has nothing to broadcast.
        let overlapped = opts.channel == ChannelMode::Overlapped;
        let span_ns =
            if overlapped { to_ns.max(kernel_ns) + from_ns } else { to_ns + kernel_ns + from_ns };
        let transfer_ns = if overlapped {
            (from_ns + (to_ns - kernel_ns).max(0.0)) as u64
        } else {
            (to_ns + from_ns) as u64
        };
        let start = st.vtime;
        let round_end = (start + span_ns as u64).max(start + 1);

        // An outage striking *inside* this round's window takes its rank
        // down mid-flight: every request on it fails with the typed
        // rank-offline fault, and the rank stays out of the healthy set
        // until it rejoins.
        let mut struck_ranks: Vec<u32> = Vec::new();
        while st.outage_cursor < plan.outages().len()
            && plan.outages()[st.outage_cursor].at_ns < round_end
        {
            let o = plan.outages()[st.outage_cursor];
            st.outage_cursor += 1;
            struck_ranks.push(o.rank);
            st.active_outages.push((o.rank, o.until_ns));
        }
        let degraded_round = !st.active_outages.is_empty();

        // Resolve every request: completion records its latency split;
        // a fault either schedules a backoff retry or, past the budget,
        // counts the request as failed. Rank-offline outranks the
        // per-DPU draws (the whole rank is gone).
        let fault_of = |dpu: u32| -> Option<FaultKind> {
            let rank = plan.rank_of(dpu);
            if struck_ranks.contains(&rank) {
                return Some(FaultKind::RankOffline { rank });
            }
            faults.iter().find(|&&(d, _)| d == dpu).map(|&(_, k)| k)
        };
        for (i, (r, &prior)) in batch.iter().zip(&attempts).enumerate() {
            let (slot_dpu, slot) = (i / SLOTS_PER_DPU, i % SLOTS_PER_DPU);
            match fault_of(healthy[slot_dpu]) {
                None => {
                    let profile = &cache[&canon[slot_dpu]];
                    let queue_ns = start - r.arrival_ns;
                    let execute_ns = profile.slot_exec_ns[assign[slot_dpu][slot]] as u64;
                    st.splits[r.tenant].record(queue_ns, transfer_ns, execute_ns);
                    st.completed[r.tenant] += 1;
                    if degraded_round {
                        st.degraded[r.tenant] += 1;
                    }
                }
                Some(kind) => {
                    st.fault_counts[match kind {
                        FaultKind::Transient => 0,
                        FaultKind::Stuck { .. } => 1,
                        FaultKind::RankOffline { .. } => 2,
                    }] += 1;
                    let attempt = prior + 1;
                    if attempt > spec.max_retries {
                        st.failed[r.tenant] += 1;
                    } else {
                        st.retried[r.tenant] += 1;
                        let delay = backoff_ns << (attempt - 1).min(20);
                        st.retries.push(RetryEntry {
                            ready_at: round_end + delay,
                            attempt,
                            req: *r,
                        });
                    }
                }
            }
        }
        st.retries.sort_unstable_by_key(|e| (e.ready_at, e.req.id));

        st.timeline.to_dpu_ns += to_ns;
        st.timeline.kernel_ns += kernel_ns;
        st.timeline.from_dpu_ns += from_ns;
        st.timeline.launches += 1;
        st.rounds += 1;
        st.vtime = round_end;
    }

    let mut metrics = MetricsSink::new();
    let stats = st.queue.stats().to_vec();
    metrics.incr("serve_offered", stats.iter().map(|s| s.offered).sum());
    metrics.incr("serve_admitted", stats.iter().map(|s| s.admitted).sum());
    metrics.incr("serve_rejected_capacity", stats.iter().map(|s| s.rejected_capacity).sum());
    metrics.incr("serve_rejected_quota", stats.iter().map(|s| s.rejected_quota).sum());
    metrics.incr("serve_completed", st.completed.iter().sum());
    metrics.incr("serve_failed", st.failed.iter().sum());
    metrics.incr("serve_retried", st.retried.iter().sum());
    metrics.incr("serve_degraded", st.degraded.iter().sum());
    metrics.incr("serve_faults_transient", st.fault_counts[0]);
    metrics.incr("serve_faults_stuck", st.fault_counts[1]);
    metrics.incr("serve_faults_rank_offline", st.fault_counts[2]);
    metrics.incr("serve_rounds", st.rounds);
    metrics.incr("serve_compositions", st.seen.len() as u64);

    let tenants = scenario
        .tenants
        .iter()
        .enumerate()
        .map(|(t, spec)| TenantOutcome {
            name: spec.name,
            share: spec.share,
            weight: spec.weight,
            admission: stats[t],
            completed: st.completed[t],
            failed: st.failed[t],
            retried: st.retried[t],
            degraded: st.degraded[t],
            throughput_rps: st.completed[t] as f64 * 1e9 / duration_ns as f64,
            latency: st.splits[t].clone(),
        })
        .collect();

    Ok(ServeOutcome {
        scenario: scenario.name,
        policy: st.policy.name(),
        seed: opts.seed,
        load: opts.load,
        duration_ns,
        n_dpus: scenario.n_dpus,
        faults: fault_label(opts),
        channel: channel_label(opts),
        tenants,
        timeline: st.timeline,
        metrics,
        rounds: st.rounds,
        distinct_compositions: st.seen.len(),
        traces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::scenario_by_name;

    fn opts(threads: usize) -> ServeOptions {
        ServeOptions { threads: Some(threads), ..ServeOptions::default() }
    }

    #[test]
    fn accounting_is_conserved() {
        let s = scenario_by_name("tiny").unwrap();
        let out = run_scenario(s, &opts(1)).unwrap();
        assert!(out.offered() > 0);
        assert_eq!(out.offered(), out.admitted() + out.rejected());
        // Open-loop with a drain phase: everything admitted completes.
        assert_eq!(out.admitted(), out.completed());
        for t in &out.tenants {
            assert_eq!(t.latency.total.count(), t.completed);
        }
        assert_eq!(out.metrics.get("serve_completed"), out.completed());
        assert_eq!(out.rounds, u64::from(out.timeline.launches));
    }

    #[test]
    fn worker_count_does_not_change_the_outcome() {
        let s = scenario_by_name("tiny").unwrap();
        let a = run_scenario(s, &opts(1)).unwrap();
        let b = run_scenario(s, &opts(4)).unwrap();
        assert_eq!(a.completed(), b.completed());
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.timeline, b.timeline);
        for (x, y) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(x.admission, y.admission);
            assert_eq!(x.latency.total.slo_triple(), y.latency.total.slo_triple());
            assert_eq!(x.latency.queue.slo_triple(), y.latency.queue.slo_triple());
        }
    }

    #[test]
    fn overload_produces_counted_rejects_and_a_latency_knee() {
        let s = scenario_by_name("tiny").unwrap();
        let light = run_scenario(s, &ServeOptions { load: 0.25, ..opts(2) }).unwrap();
        let heavy = run_scenario(s, &ServeOptions { load: 8.0, ..opts(2) }).unwrap();
        assert!(heavy.rejected() > 0, "overload must hit admission limits");
        let (p99_light, p99_heavy) = (
            light.tenants[0].latency.total.quantile_ns(0.99),
            heavy.tenants[0].latency.total.quantile_ns(0.99),
        );
        assert!(
            p99_heavy > 2 * p99_light,
            "p99 should knee under overload ({p99_light} vs {p99_heavy})"
        );
    }

    #[test]
    fn policy_override_is_honoured() {
        let s = scenario_by_name("tiny").unwrap();
        let out =
            run_scenario(s, &ServeOptions { policy: Some("weighted_fair".into()), ..opts(1) })
                .unwrap();
        assert_eq!(out.policy, "weighted_fair");
    }

    #[test]
    fn tracing_captures_one_trace_per_composition() {
        let s = scenario_by_name("tiny").unwrap();
        let out = run_scenario(s, &ServeOptions { trace_capacity: 256, ..opts(2) }).unwrap();
        assert_eq!(out.traces.len(), out.distinct_compositions);
        assert!(out.traces.iter().all(|t| t.trace.event_count() > 0));
    }

    #[test]
    fn overlapped_channel_conserves_and_shortens_transfer_stalls() {
        let s = scenario_by_name("tiny").unwrap();
        let blocking = run_scenario(s, &opts(2)).unwrap();
        let over =
            run_scenario(s, &ServeOptions { channel: ChannelMode::Overlapped, ..opts(2) }).unwrap();
        assert_eq!(over.channel, "overlapped");
        assert_eq!(over.admitted(), over.completed() + over.failed());
        // Same offered traffic (arrivals are seeded, not timing-fed)…
        assert_eq!(over.offered(), blocking.offered());
        // …but each round only charges the unhidden transfer tail, so the
        // per-request transfer median cannot exceed blocking's.
        let agg_b = blocking.aggregate_latency();
        let agg_o = over.aggregate_latency();
        assert!(
            agg_o.transfer.quantile_ns(0.5) <= agg_b.transfer.quantile_ns(0.5),
            "overlap must not lengthen the transfer phase"
        );
    }

    #[test]
    fn broadcast_channel_prices_exactly_like_blocking_here() {
        // Serving payloads are distinct per DPU: nothing to broadcast,
        // so the mode degenerates to blocking, byte-for-byte.
        let s = scenario_by_name("tiny").unwrap();
        let a = run_scenario(s, &opts(2)).unwrap();
        let b =
            run_scenario(s, &ServeOptions { channel: ChannelMode::Broadcast, ..opts(2) }).unwrap();
        assert_eq!(a.timeline, b.timeline);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.completed(), b.completed());
        assert_eq!(b.channel, "broadcast");
    }

    #[test]
    fn transient_faults_retry_and_conserve_requests() {
        let s = scenario_by_name("faulty").unwrap();
        let spec = FaultSpec::parse("transient=100,seed=5").unwrap();
        let out = run_scenario(s, &ServeOptions { faults: Some(spec), ..opts(2) }).unwrap();
        assert!(out.retried() > 0, "a 10% transient rate must trigger retries");
        assert_eq!(
            out.admitted(),
            out.completed() + out.failed(),
            "every admitted request ends exactly once"
        );
        assert_eq!(out.metrics.get("serve_faults_transient"), out.retried() + out.failed());
        assert_eq!(out.faults, spec.label());
    }

    #[test]
    fn zero_retry_budget_fails_every_faulted_request() {
        let s = scenario_by_name("faulty").unwrap();
        let spec = FaultSpec::parse("transient=150,retries=0,seed=3").unwrap();
        let out = run_scenario(s, &ServeOptions { faults: Some(spec), ..opts(2) }).unwrap();
        assert!(out.failed() > 0);
        assert_eq!(out.retried(), 0);
        assert_eq!(out.admitted(), out.completed() + out.failed());
    }

    #[test]
    fn stuck_faults_stretch_the_round_clock() {
        let s = scenario_by_name("faulty").unwrap();
        let spec = FaultSpec::parse("stuck=60,timeout_us=5000,seed=11").unwrap();
        let faulty = run_scenario(s, &ServeOptions { faults: Some(spec), ..opts(2) }).unwrap();
        let clean = run_scenario(s, &opts(2)).unwrap();
        assert!(faulty.metrics.get("serve_faults_stuck") > 0);
        assert!(
            faulty.timeline.kernel_ns > clean.timeline.kernel_ns,
            "watchdog timeouts must show up as kernel time"
        );
    }

    #[test]
    fn rank_outage_degrades_but_conserves() {
        let s = scenario_by_name("faulty").unwrap();
        // 2 ranks of 4 DPUs; one outage takes half the capacity down.
        let spec = FaultSpec::parse("outages=2,outage_ms=1,rank_dpus=4,seed=2").unwrap();
        let out = run_scenario(s, &ServeOptions { faults: Some(spec), ..opts(2) }).unwrap();
        assert!(out.degraded() > 0, "completions during the outage count as degraded");
        assert_eq!(out.admitted(), out.completed() + out.failed());
    }

    #[test]
    fn all_ranks_offline_stalls_without_deadlock() {
        let s = scenario_by_name("faulty").unwrap();
        // One rank spanning all 8 DPUs: its outage idles the whole rank.
        let spec = FaultSpec::parse("outages=3,outage_ms=1,rank_dpus=8,seed=4").unwrap();
        let out = run_scenario(s, &ServeOptions { faults: Some(spec), ..opts(2) }).unwrap();
        assert_eq!(out.admitted(), out.completed() + out.failed());
        assert!(out.metrics.get("serve_faults_rank_offline") > 0 || out.degraded() > 0);
    }
}
