//! The serving runtime: a deterministic virtual-time event loop.
//!
//! One run is a pure function of `(scenario, options)`. Arrivals are
//! generated up front from the seed; the loop then alternates between
//! admitting arrivals whose timestamp has passed and dispatching one
//! *round* — a batch drained by the scheduling policy and packed onto the
//! rank's slots. Each round's cost comes from cycle-level simulation of
//! its per-DPU compositions, memoized in a [`CompositionCache`]; only
//! first-seen compositions are simulated, and those simulations are the
//! one thing `--threads` parallelizes (via the order-preserving
//! [`JobRunner::map`]), so results are byte-identical at any worker
//! count.

use pimulator::jobs::JobRunner;
use pimulator::pim_dpu::{DpuConfig, SimError};
use pimulator::pim_host::{ExecutionTimeline, TransferConfig};
use pimulator::pim_trace::MetricsSink;
use pimulator::trace::JobTrace;

use crate::kernels::{
    profile_composition, request_classes, CompositionCache, EMPTY_SLOT, SLOTS_PER_DPU,
    TASKLETS_PER_SLOT,
};
use crate::queue::{AdmissionQueue, TenantAdmission};
use crate::scenario::Scenario;
use crate::sched::policy_by_name_with_weights;
use crate::slo::LatencySplit;
use crate::traffic::{generate, to_request};

/// Knobs of one serving run (everything the CLI exposes).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Traffic seed.
    pub seed: u64,
    /// Simulated run length in ms; 0 uses the scenario default.
    pub duration_ms: u64,
    /// Load multiplier on the scenario's base arrival rate.
    pub load: f64,
    /// Worker threads for composition profiling (`None` ⇒ default).
    pub threads: Option<usize>,
    /// Scheduling-policy override (`None` uses the scenario's).
    pub policy: Option<String>,
    /// Per-DPU event-ring capacity for profiling traces; 0 disables.
    pub trace_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            seed: 42,
            duration_ms: 0,
            load: 1.0,
            threads: None,
            policy: None,
            trace_capacity: 0,
        }
    }
}

/// Per-tenant results of one run.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    /// Tenant name from the scenario.
    pub name: &'static str,
    /// Traffic share (arrival-side weight) from the scenario.
    pub share: u32,
    /// Weighted-fair scheduling weight from the scenario.
    pub weight: u32,
    /// Admission counters (offered / admitted / rejected, by reason).
    pub admission: TenantAdmission,
    /// Requests that ran to completion.
    pub completed: u64,
    /// Completions per second of simulated time.
    pub throughput_rps: f64,
    /// Queue / transfer / execute / total latency histograms.
    pub latency: LatencySplit,
}

/// The full, deterministic result of one serving run.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Scenario name.
    pub scenario: &'static str,
    /// The policy that actually ran (after any override).
    pub policy: &'static str,
    /// Traffic seed.
    pub seed: u64,
    /// Load multiplier.
    pub load: f64,
    /// Simulated run length, ns (the arrival window; completions may
    /// land later — the loop drains the queue).
    pub duration_ns: u64,
    /// DPUs in the rank.
    pub n_dpus: u32,
    /// Per-tenant outcomes, in scenario order.
    pub tenants: Vec<TenantOutcome>,
    /// Accumulated transfer/kernel split across all rounds.
    pub timeline: ExecutionTimeline,
    /// Serving counters (`serve_*`), deterministic iteration order.
    pub metrics: MetricsSink,
    /// Scheduling rounds dispatched.
    pub rounds: u64,
    /// Distinct DPU compositions simulated (cache size).
    pub distinct_compositions: usize,
    /// Profiling event traces, one per distinct composition, present
    /// when [`ServeOptions::trace_capacity`] was non-zero.
    pub traces: Vec<JobTrace>,
}

impl ServeOutcome {
    /// Requests offered across all tenants.
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.tenants.iter().map(|t| t.admission.offered).sum()
    }

    /// Requests admitted across all tenants.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.tenants.iter().map(|t| t.admission.admitted).sum()
    }

    /// Requests rejected across all tenants (both reasons).
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.tenants.iter().map(|t| t.admission.rejected()).sum()
    }

    /// Requests completed across all tenants.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.tenants.iter().map(|t| t.completed).sum()
    }

    /// Aggregate completions per simulated second.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        self.tenants.iter().map(|t| t.throughput_rps).sum()
    }

    /// All tenants' latency populations merged into one split (for
    /// whole-scenario percentiles like the saturation sweep's p99).
    #[must_use]
    pub fn aggregate_latency(&self) -> LatencySplit {
        let mut all = LatencySplit::default();
        for t in &self.tenants {
            all.merge(&t.latency);
        }
        all
    }
}

/// Runs one serving scenario to completion (all admitted requests are
/// served; the arrival window closes after `duration`, then the queue
/// drains).
///
/// # Errors
///
/// Propagates a [`SimError`] from composition profiling — a staged
/// transfer out of range or a launch failure.
///
/// # Panics
///
/// Panics if the policy name (override or scenario default) is unknown
/// or the load multiplier is not positive; the CLI layer validates both
/// before calling.
pub fn run_scenario(scenario: &Scenario, opts: &ServeOptions) -> Result<ServeOutcome, SimError> {
    let duration_ms =
        if opts.duration_ms > 0 { opts.duration_ms } else { scenario.default_duration_ms };
    let duration_ns = duration_ms * 1_000_000;
    let arrivals = generate(scenario, opts.seed, opts.load, duration_ns);

    let mut cfg = DpuConfig::paper_baseline(SLOTS_PER_DPU as u32 * TASKLETS_PER_SLOT);
    if scenario.mmu {
        cfg = cfg.with_paper_mmu();
    }
    let xfer = TransferConfig::paper();
    let weights: Vec<u64> = scenario.tenants.iter().map(|t| u64::from(t.weight)).collect();
    let policy_name = opts.policy.as_deref().unwrap_or(scenario.policy);
    let mut policy = policy_by_name_with_weights(policy_name, &weights)
        .unwrap_or_else(|| panic!("unknown scheduling policy {policy_name}"));

    let quotas: Vec<usize> = scenario.tenants.iter().map(|t| t.quota).collect();
    let mut queue = AdmissionQueue::new(scenario.queue_capacity, quotas);
    let runner = JobRunner::new(opts.threads);
    let mut cache = CompositionCache::new();
    let mut traces: Vec<JobTrace> = Vec::new();

    let n_dpus = scenario.n_dpus as usize;
    let rank_slots = n_dpus * SLOTS_PER_DPU;
    let classes = request_classes();
    let mut splits: Vec<LatencySplit> = vec![LatencySplit::default(); scenario.tenants.len()];
    let mut completed: Vec<u64> = vec![0; scenario.tenants.len()];
    let mut timeline = ExecutionTimeline::default();
    let mut rounds = 0u64;

    let mut vtime = 0u64;
    let mut next = 0usize;
    loop {
        // Admit everything that has arrived by now; rejects are counted
        // inside the queue, never dropped silently.
        while next < arrivals.len() && arrivals[next].at_ns <= vtime {
            queue.offer(to_request(next as u64, arrivals[next]));
            next += 1;
        }
        if queue.is_empty() {
            let Some(a) = arrivals.get(next) else { break };
            vtime = a.at_ns;
            continue;
        }

        // One round: drain a batch and pack it slot by slot onto the rank.
        let batch = policy.next_batch(&mut queue, rank_slots);
        assert!(!batch.is_empty(), "policies drain a non-empty queue");
        let mut comps = vec![vec![EMPTY_SLOT; SLOTS_PER_DPU]; n_dpus];
        for (i, r) in batch.iter().enumerate() {
            comps[i / SLOTS_PER_DPU][i % SLOTS_PER_DPU] = r.class;
        }

        // Profile each composition in *canonical* (sorted) form: the
        // cycle cost of a co-located image depends on the multiset of
        // kernels sharing the DPU, not on which slot each occupies, so
        // canonicalizing collapses the cache keyspace from ordered
        // tuples to multisets. `assign` maps each original slot to its
        // position in the canonical form (duplicates taken in order) so
        // per-request execute times read the right profile entry.
        let canon: Vec<Vec<u16>> = comps
            .iter()
            .map(|c| {
                let mut s = c.clone();
                s.sort_unstable();
                s
            })
            .collect();
        let assign: Vec<Vec<usize>> = comps
            .iter()
            .zip(&canon)
            .map(|(orig, c)| {
                let mut used = vec![false; c.len()];
                orig.iter()
                    .map(|&cls| {
                        let j = c
                            .iter()
                            .enumerate()
                            .position(|(j, &cc)| cc == cls && !used[j])
                            .expect("canonical form is a permutation");
                        used[j] = true;
                        j
                    })
                    .collect()
            })
            .collect();

        // Simulate first-seen compositions, in sorted order on the
        // order-preserving runner so threading cannot reorder results.
        let mut missing: Vec<Vec<u16>> =
            canon.iter().filter(|c| !cache.contains_key(c.as_slice())).cloned().collect();
        missing.sort_unstable();
        missing.dedup();
        let profiled =
            runner.map(&missing, |_, comp| profile_composition(comp, &cfg, opts.trace_capacity));
        for (comp, res) in missing.into_iter().zip(profiled) {
            let (profile, trace) = res?;
            cache.insert(comp, profile);
            traces.extend(trace);
        }

        // The round's cost: parallel transfers charge the largest per-DPU
        // chunk (as `push_to_mram` does); the kernel phase is the slowest
        // DPU's makespan.
        let dpu_bytes = |occupied: fn(&crate::kernels::RequestClass) -> u32| {
            comps
                .iter()
                .map(|comp| {
                    comp.iter()
                        .filter(|&&c| c != EMPTY_SLOT)
                        .map(|&c| u64::from(occupied(&classes[c as usize])))
                        .sum::<u64>()
                })
                .max()
                .unwrap_or(0)
        };
        let to_ns = xfer.to_dpu_ns(dpu_bytes(|c| c.input_bytes));
        let from_ns = xfer.from_dpu_ns(dpu_bytes(|c| c.output_bytes));
        let exec_max_ns = canon
            .iter()
            .filter(|c| c.iter().any(|&s| s != EMPTY_SLOT))
            .map(|c| cache[c].makespan_ns)
            .fold(0.0f64, f64::max);

        let start = vtime;
        for (i, r) in batch.iter().enumerate() {
            let (dpu, slot) = (i / SLOTS_PER_DPU, i % SLOTS_PER_DPU);
            let profile = &cache[&canon[dpu]];
            let queue_ns = start - r.arrival_ns;
            let transfer_ns = (to_ns + from_ns) as u64;
            let execute_ns = profile.slot_exec_ns[assign[dpu][slot]] as u64;
            splits[r.tenant].record(queue_ns, transfer_ns, execute_ns);
            completed[r.tenant] += 1;
        }
        timeline.to_dpu_ns += to_ns;
        timeline.kernel_ns += exec_max_ns;
        timeline.from_dpu_ns += from_ns;
        timeline.launches += 1;
        rounds += 1;
        vtime = (start + (to_ns + exec_max_ns + from_ns) as u64).max(start + 1);
    }

    let mut metrics = MetricsSink::new();
    let stats = queue.stats().to_vec();
    metrics.incr("serve_offered", stats.iter().map(|s| s.offered).sum());
    metrics.incr("serve_admitted", stats.iter().map(|s| s.admitted).sum());
    metrics.incr("serve_rejected_capacity", stats.iter().map(|s| s.rejected_capacity).sum());
    metrics.incr("serve_rejected_quota", stats.iter().map(|s| s.rejected_quota).sum());
    metrics.incr("serve_completed", completed.iter().sum());
    metrics.incr("serve_rounds", rounds);
    metrics.incr("serve_compositions", cache.len() as u64);

    let tenants = scenario
        .tenants
        .iter()
        .enumerate()
        .map(|(t, spec)| TenantOutcome {
            name: spec.name,
            share: spec.share,
            weight: spec.weight,
            admission: stats[t],
            completed: completed[t],
            throughput_rps: completed[t] as f64 * 1e9 / duration_ns as f64,
            latency: splits[t].clone(),
        })
        .collect();

    Ok(ServeOutcome {
        scenario: scenario.name,
        policy: policy.name(),
        seed: opts.seed,
        load: opts.load,
        duration_ns,
        n_dpus: scenario.n_dpus,
        tenants,
        timeline,
        metrics,
        rounds,
        distinct_compositions: cache.len(),
        traces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::scenario_by_name;

    fn opts(threads: usize) -> ServeOptions {
        ServeOptions { threads: Some(threads), ..ServeOptions::default() }
    }

    #[test]
    fn accounting_is_conserved() {
        let s = scenario_by_name("tiny").unwrap();
        let out = run_scenario(s, &opts(1)).unwrap();
        assert!(out.offered() > 0);
        assert_eq!(out.offered(), out.admitted() + out.rejected());
        // Open-loop with a drain phase: everything admitted completes.
        assert_eq!(out.admitted(), out.completed());
        for t in &out.tenants {
            assert_eq!(t.latency.total.count(), t.completed);
        }
        assert_eq!(out.metrics.get("serve_completed"), out.completed());
        assert_eq!(out.rounds, u64::from(out.timeline.launches));
    }

    #[test]
    fn worker_count_does_not_change_the_outcome() {
        let s = scenario_by_name("tiny").unwrap();
        let a = run_scenario(s, &opts(1)).unwrap();
        let b = run_scenario(s, &opts(4)).unwrap();
        assert_eq!(a.completed(), b.completed());
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.timeline, b.timeline);
        for (x, y) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(x.admission, y.admission);
            assert_eq!(x.latency.total.slo_triple(), y.latency.total.slo_triple());
            assert_eq!(x.latency.queue.slo_triple(), y.latency.queue.slo_triple());
        }
    }

    #[test]
    fn overload_produces_counted_rejects_and_a_latency_knee() {
        let s = scenario_by_name("tiny").unwrap();
        let light = run_scenario(s, &ServeOptions { load: 0.25, ..opts(2) }).unwrap();
        let heavy = run_scenario(s, &ServeOptions { load: 8.0, ..opts(2) }).unwrap();
        assert!(heavy.rejected() > 0, "overload must hit admission limits");
        let (p99_light, p99_heavy) = (
            light.tenants[0].latency.total.quantile_ns(0.99),
            heavy.tenants[0].latency.total.quantile_ns(0.99),
        );
        assert!(
            p99_heavy > 2 * p99_light,
            "p99 should knee under overload ({p99_light} vs {p99_heavy})"
        );
    }

    #[test]
    fn policy_override_is_honoured() {
        let s = scenario_by_name("tiny").unwrap();
        let out =
            run_scenario(s, &ServeOptions { policy: Some("weighted_fair".into()), ..opts(1) })
                .unwrap();
        assert_eq!(out.policy, "weighted_fair");
    }

    #[test]
    fn tracing_captures_one_trace_per_composition() {
        let s = scenario_by_name("tiny").unwrap();
        let out = run_scenario(s, &ServeOptions { trace_capacity: 256, ..opts(2) }).unwrap();
        assert_eq!(out.traces.len(), out.distinct_compositions);
        assert!(out.traces.iter().all(|t| t.trace.event_count() > 0));
    }
}
