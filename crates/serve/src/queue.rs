//! The bounded admission queue with per-tenant quotas.
//!
//! Backpressure is explicit: every offered request is either admitted or
//! rejected with a *counted* reason (queue full, tenant over quota) —
//! nothing is silently dropped. The queue itself is FIFO; scheduling
//! policies reorder *service*, not admission.

use std::collections::VecDeque;

/// One admitted (or offered) serving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Monotonic request id (arrival order).
    pub id: u64,
    /// Index into the scenario's tenant list.
    pub tenant: usize,
    /// Request-class index (see [`crate::kernels::request_classes`]).
    pub class: u16,
    /// Simulated arrival time, ns.
    pub arrival_ns: u64,
}

/// The verdict of one admission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The request joined the queue.
    Admitted,
    /// The global queue was full.
    RejectedCapacity,
    /// The tenant already held its quota of queued requests.
    RejectedQuota,
}

/// Per-tenant admission counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantAdmission {
    /// Requests offered by the traffic generator.
    pub offered: u64,
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Rejections because the global queue was full.
    pub rejected_capacity: u64,
    /// Rejections because the tenant was over its quota.
    pub rejected_quota: u64,
}

impl TenantAdmission {
    /// Total rejected requests.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected_capacity + self.rejected_quota
    }
}

/// A bounded FIFO admission queue with per-tenant quotas.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    queue: VecDeque<Request>,
    capacity: usize,
    quotas: Vec<usize>,
    queued: Vec<usize>,
    stats: Vec<TenantAdmission>,
}

impl AdmissionQueue {
    /// Creates a queue holding at most `capacity` requests overall and at
    /// most `quotas[t]` requests of tenant `t`.
    #[must_use]
    pub fn new(capacity: usize, quotas: Vec<usize>) -> Self {
        let n = quotas.len();
        AdmissionQueue {
            queue: VecDeque::new(),
            capacity,
            quotas,
            queued: vec![0; n],
            stats: vec![TenantAdmission::default(); n],
        }
    }

    /// Rebuilds a queue from checkpointed state: the limits, the queued
    /// requests in FIFO order, and the admission counters as of the
    /// snapshot. Per-tenant occupancy is re-derived from `contents`.
    #[must_use]
    pub fn restore(
        capacity: usize,
        quotas: Vec<usize>,
        contents: Vec<Request>,
        stats: Vec<TenantAdmission>,
    ) -> Self {
        let mut queued = vec![0; quotas.len()];
        for r in &contents {
            queued[r.tenant] += 1;
        }
        AdmissionQueue { queue: contents.into(), capacity, quotas, queued, stats }
    }

    /// The queued requests in FIFO order (for checkpointing).
    pub fn iter(&self) -> impl Iterator<Item = &Request> {
        self.queue.iter()
    }

    /// Offers one request; the quota check runs first so a full queue
    /// never masks a tenant that is also over quota.
    pub fn offer(&mut self, req: Request) -> Admission {
        let s = &mut self.stats[req.tenant];
        s.offered += 1;
        if self.queued[req.tenant] >= self.quotas[req.tenant] {
            s.rejected_quota += 1;
            return Admission::RejectedQuota;
        }
        if self.queue.len() >= self.capacity {
            s.rejected_capacity += 1;
            return Admission::RejectedCapacity;
        }
        s.admitted += 1;
        self.queued[req.tenant] += 1;
        self.queue.push_back(req);
        Admission::Admitted
    }

    /// Removes and returns the oldest queued request.
    pub fn pop_front(&mut self) -> Option<Request> {
        let req = self.queue.pop_front()?;
        self.queued[req.tenant] -= 1;
        Some(req)
    }

    /// Removes and returns the oldest queued request matching `pred`.
    pub fn pop_first_where(&mut self, pred: impl Fn(&Request) -> bool) -> Option<Request> {
        let idx = self.queue.iter().position(pred)?;
        let req = self.queue.remove(idx)?;
        self.queued[req.tenant] -= 1;
        Some(req)
    }

    /// The oldest queued request, if any.
    #[must_use]
    pub fn front(&self) -> Option<&Request> {
        self.queue.front()
    }

    /// Queued requests overall.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Queued requests of one tenant.
    #[must_use]
    pub fn queued_of(&self, tenant: usize) -> usize {
        self.queued[tenant]
    }

    /// Per-tenant admission counters.
    #[must_use]
    pub fn stats(&self) -> &[TenantAdmission] {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, tenant: usize) -> Request {
        Request { id, tenant, class: 0, arrival_ns: id }
    }

    #[test]
    fn admits_until_capacity_then_counts_rejects() {
        let mut q = AdmissionQueue::new(2, vec![10]);
        assert_eq!(q.offer(req(0, 0)), Admission::Admitted);
        assert_eq!(q.offer(req(1, 0)), Admission::Admitted);
        assert_eq!(q.offer(req(2, 0)), Admission::RejectedCapacity);
        let s = q.stats()[0];
        assert_eq!((s.offered, s.admitted, s.rejected_capacity), (3, 2, 1));
        assert_eq!(s.rejected(), 1);
    }

    #[test]
    fn quota_binds_per_tenant_before_capacity() {
        let mut q = AdmissionQueue::new(10, vec![1, 1]);
        assert_eq!(q.offer(req(0, 0)), Admission::Admitted);
        assert_eq!(q.offer(req(1, 0)), Admission::RejectedQuota);
        assert_eq!(q.offer(req(2, 1)), Admission::Admitted);
        assert_eq!(q.queued_of(0), 1);
        assert_eq!(q.queued_of(1), 1);
        // Popping frees the quota slot again.
        assert_eq!(q.pop_front().unwrap().id, 0);
        assert_eq!(q.offer(req(3, 0)), Admission::Admitted);
    }

    #[test]
    fn restore_rebuilds_occupancy_and_counters() {
        let mut q = AdmissionQueue::new(4, vec![2, 2]);
        for (id, tenant) in [(0u64, 0usize), (1, 1), (2, 1)] {
            q.offer(req(id, tenant));
        }
        q.pop_front();
        let contents: Vec<Request> = q.iter().copied().collect();
        let restored = AdmissionQueue::restore(4, vec![2, 2], contents, q.stats().to_vec());
        assert_eq!(restored.len(), q.len());
        assert_eq!(restored.queued_of(0), 0);
        assert_eq!(restored.queued_of(1), 2);
        assert_eq!(restored.stats(), q.stats());
        // The restored queue enforces the same quota state.
        let mut restored = restored;
        assert_eq!(restored.offer(req(9, 1)), Admission::RejectedQuota);
    }

    #[test]
    fn pop_first_where_preserves_fifo_within_the_filter() {
        let mut q = AdmissionQueue::new(10, vec![10, 10]);
        for (id, tenant) in [(0u64, 0usize), (1, 1), (2, 0), (3, 1)] {
            q.offer(req(id, tenant));
        }
        assert_eq!(q.pop_first_where(|r| r.tenant == 1).unwrap().id, 1);
        assert_eq!(q.pop_first_where(|r| r.tenant == 1).unwrap().id, 3);
        assert!(q.pop_first_where(|r| r.tenant == 1).is_none());
        assert_eq!(q.len(), 2);
    }
}
