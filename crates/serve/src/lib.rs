//! # pim-serve
//!
//! A multi-tenant **serving runtime** over the PIMulator-RS stack: seeded
//! open-loop traffic, bounded admission with per-tenant quotas, pluggable
//! batch scheduling onto co-located DPU slots, and per-tenant latency-SLO
//! accounting — the paper's §V-C multi-tenancy machinery exercised under
//! sustained load rather than one-shot experiments.
//!
//! ## Structure
//!
//! | module | role |
//! |---|---|
//! | [`scenario`] | the named scenario registry (`pimsim serve --list`) |
//! | [`traffic`] | seeded Poisson-ish arrival generation on simulated time |
//! | [`queue`] | bounded admission queue with counted backpressure |
//! | [`sched`] | `SchedulerPolicy`: FIFO, size-class, weighted-fair (DRR) |
//! | [`kernels`] | proxy request kernels + memoized composition profiler |
//! | [`slo`] | log-bucketed latency histograms, p50/p95/p99 |
//! | [`fault`] | seeded fault campaigns: transient, stuck-DPU, rank outage |
//! | [`checkpoint`] | snapshot/restore of the loop state, JSON round-trip |
//! | [`runtime`] | the virtual-time event loop tying it all together |
//!
//! ## Determinism
//!
//! Everything runs on *simulated* time: arrivals, scheduling, and
//! completions are a pure function of `(scenario, seed, load, duration)`.
//! Worker threads only parallelize cycle-level profiling of first-seen
//! DPU compositions through the order-preserving job runner, so the
//! rendered results JSON is byte-identical at any `--threads` value —
//! the same property the experiment goldens rely on.
//!
//! ```
//! use pim_serve::{run_scenario, scenario_by_name, ServeOptions};
//!
//! let s = scenario_by_name("tiny").unwrap();
//! let opts = ServeOptions { duration_ms: 1, ..ServeOptions::default() };
//! let out = run_scenario(s, &opts).unwrap();
//! assert_eq!(out.offered(), out.admitted() + out.rejected());
//! ```

pub mod checkpoint;
pub mod fault;
pub mod kernels;
pub mod queue;
pub mod runtime;
pub mod scenario;
pub mod sched;
pub mod slo;
pub mod traffic;

pub use checkpoint::{Checkpoint, RetryEntry, CHECKPOINT_SCHEMA};
pub use fault::{FaultPlan, FaultSpec, Outage};
pub use queue::{Admission, AdmissionQueue, Request, TenantAdmission};
pub use runtime::{
    channel_label, fault_label, resolved_duration_ns, resolved_policy_name, resume_scenario,
    run_scenario, run_scenario_with_checkpoints, ServeOptions, ServeOutcome, TenantOutcome,
};
pub use scenario::{scenario_by_name, scenarios, Scenario, TenantSpec};
pub use sched::{policy_by_name, policy_by_name_with_weights, SchedulerPolicy};
pub use slo::{LatencyHistogram, LatencySplit};

use pimulator::report::{Json, Table};
use slo::LatencyHistogram as Hist;

/// The `{p50,p95,p99}` object of one histogram (`total` additionally
/// gets mean/max in [`outcome_json`]).
fn pcts_json(h: &Hist) -> Json {
    let (p50, p95, p99) = h.slo_triple();
    Json::obj([
        ("p50_ns", Json::UInt(p50)),
        ("p95_ns", Json::UInt(p95)),
        ("p99_ns", Json::UInt(p99)),
    ])
}

/// Renders one serving outcome as the deterministic results document
/// written to `results/serve_<scenario>.json`.
#[must_use]
pub fn outcome_json(out: &ServeOutcome) -> Json {
    let tenants = out.tenants.iter().map(|t| {
        let (p50, p95, p99) = t.latency.total.slo_triple();
        Json::obj([
            ("name", Json::from(t.name)),
            ("share", Json::UInt(u64::from(t.share))),
            ("weight", Json::UInt(u64::from(t.weight))),
            ("offered", Json::UInt(t.admission.offered)),
            ("admitted", Json::UInt(t.admission.admitted)),
            ("rejected_capacity", Json::UInt(t.admission.rejected_capacity)),
            ("rejected_quota", Json::UInt(t.admission.rejected_quota)),
            ("completed", Json::UInt(t.completed)),
            ("failed", Json::UInt(t.failed)),
            ("retried", Json::UInt(t.retried)),
            ("degraded", Json::UInt(t.degraded)),
            ("throughput_rps", Json::from(t.throughput_rps)),
            (
                "latency",
                Json::obj([
                    ("queue", pcts_json(&t.latency.queue)),
                    ("transfer", pcts_json(&t.latency.transfer)),
                    ("execute", pcts_json(&t.latency.execute)),
                    (
                        "total",
                        Json::obj([
                            ("p50_ns", Json::UInt(p50)),
                            ("p95_ns", Json::UInt(p95)),
                            ("p99_ns", Json::UInt(p99)),
                            ("mean_ns", Json::from(t.latency.total.mean_ns())),
                            ("max_ns", Json::UInt(t.latency.total.max_ns())),
                        ]),
                    ),
                ]),
            ),
        ])
    });
    let mut top = vec![
        ("serve", Json::from(out.scenario)),
        ("seed", Json::UInt(out.seed)),
        ("policy", Json::from(out.policy)),
        ("load", Json::from(out.load)),
        ("duration_ms", Json::UInt(out.duration_ns / 1_000_000)),
        ("n_dpus", Json::UInt(u64::from(out.n_dpus))),
        ("faults", Json::from(out.faults.as_str())),
    ];
    // The channel key only appears for v2 modes, so pre-v2 reports (and
    // the golden snapshots pinned on them) stay byte-identical.
    if out.channel != "blocking" {
        top.push(("channel", Json::from(out.channel)));
    }
    top.extend([
        ("rounds", Json::UInt(out.rounds)),
        ("distinct_compositions", Json::UInt(out.distinct_compositions as u64)),
        ("tenants", Json::arr(tenants)),
        (
            "totals",
            Json::obj([
                ("offered", Json::UInt(out.offered())),
                ("admitted", Json::UInt(out.admitted())),
                ("rejected", Json::UInt(out.rejected())),
                ("completed", Json::UInt(out.completed())),
                ("failed", Json::UInt(out.failed())),
                ("retried", Json::UInt(out.retried())),
                ("degraded", Json::UInt(out.degraded())),
                ("throughput_rps", Json::from(out.throughput_rps())),
            ]),
        ),
        (
            "timeline",
            Json::obj([
                ("to_dpu_ns", Json::from(out.timeline.to_dpu_ns)),
                ("kernel_ns", Json::from(out.timeline.kernel_ns)),
                ("from_dpu_ns", Json::from(out.timeline.from_dpu_ns)),
                ("launches", Json::UInt(u64::from(out.timeline.launches))),
            ]),
        ),
        ("metrics", Json::obj(out.metrics.counters().into_iter().map(|(k, v)| (k, Json::UInt(v))))),
    ]);
    Json::obj(top)
}

/// Renders one serving outcome as the aligned text report printed to
/// stdout.
#[must_use]
pub fn outcome_table(out: &ServeOutcome) -> String {
    let mut t = Table::new(&[
        "tenant",
        "offered",
        "admitted",
        "rejected",
        "completed",
        "failed",
        "retried",
        "degraded",
        "rps",
        "p50_us",
        "p95_us",
        "p99_us",
    ]);
    let us = |ns: u64| format!("{:.1}", ns as f64 / 1000.0);
    for ten in &out.tenants {
        let (p50, p95, p99) = ten.latency.total.slo_triple();
        t.row_owned(vec![
            ten.name.to_string(),
            ten.admission.offered.to_string(),
            ten.admission.admitted.to_string(),
            ten.admission.rejected().to_string(),
            ten.completed.to_string(),
            ten.failed.to_string(),
            ten.retried.to_string(),
            ten.degraded.to_string(),
            format!("{:.0}", ten.throughput_rps),
            us(p50),
            us(p95),
            us(p99),
        ]);
    }
    // Like the JSON key, the channel tag only appears for v2 modes.
    let channel =
        if out.channel == "blocking" { String::new() } else { format!(" channel={}", out.channel) };
    format!(
        "serve {}  policy={} seed={} load={} dpus={} rounds={} compositions={} faults={}{}\n{}",
        out.scenario,
        out.policy,
        out.seed,
        out.load,
        out.n_dpus,
        out.rounds,
        out.distinct_compositions,
        out.faults,
        channel,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_has_the_documented_shape() {
        let s = scenario_by_name("tiny").unwrap();
        let out = run_scenario(s, &ServeOptions::default()).unwrap();
        let doc = outcome_json(&out);
        let rendered = doc.render_pretty();
        let parsed = Json::parse(&rendered).expect("report round-trips");
        let Json::Obj(pairs) = &parsed else { panic!("report is an object") };
        for key in ["serve", "seed", "policy", "tenants", "totals", "timeline", "metrics"] {
            assert!(pairs.iter().any(|(k, _)| k == key), "missing key {key}");
        }
        let text = outcome_table(&out);
        assert!(text.contains("latency") && text.contains("p99_us"));
    }
}
