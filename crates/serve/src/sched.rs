//! Pluggable batch-scheduling policies.
//!
//! A policy drains up to one rank's worth of requests (`n_dpus ×
//! SLOTS_PER_DPU`) from the admission queue each round; the runtime then
//! packs them onto DPUs slot by slot. Policies reorder *service* only —
//! admission stays FIFO — and must be deterministic: same queue state in,
//! same batch out.

use pimulator::report::Json;

use crate::queue::{AdmissionQueue, Request};

/// A batch-scheduling policy.
pub trait SchedulerPolicy {
    /// The registry name (`fifo` | `size_class` | `weighted_fair`).
    fn name(&self) -> &'static str;

    /// Drains up to `capacity` requests from `q` in service order.
    fn next_batch(&mut self, q: &mut AdmissionQueue, capacity: usize) -> Vec<Request>;

    /// The policy's internal state for a checkpoint. Stateless policies
    /// (fifo, size_class) return [`Json::Null`]; stateful ones serialize
    /// whatever [`SchedulerPolicy::restore`] needs to continue exactly.
    fn snapshot(&self) -> Json {
        Json::Null
    }

    /// Rebuilds internal state from a [`SchedulerPolicy::snapshot`].
    ///
    /// # Errors
    ///
    /// Returns a message when the snapshot does not match the policy.
    fn restore(&mut self, state: &Json) -> Result<(), String> {
        match state {
            Json::Null => Ok(()),
            _ => Err(format!("policy {} is stateless but the snapshot is not null", self.name())),
        }
    }
}

/// Strict arrival order.
#[derive(Debug, Default)]
pub struct Fifo;

impl SchedulerPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn next_batch(&mut self, q: &mut AdmissionQueue, capacity: usize) -> Vec<Request> {
        let mut batch = Vec::with_capacity(capacity);
        while batch.len() < capacity {
            let Some(r) = q.pop_front() else { break };
            batch.push(r);
        }
        batch
    }
}

/// Size-class batching: each round is anchored on the class of the oldest
/// queued request, and same-class requests are preferred (in FIFO order)
/// before falling back to plain FIFO. Homogeneous batches keep DPU
/// compositions uniform, which maximizes composition-profile reuse — the
/// serving analogue of transfer batching.
#[derive(Debug, Default)]
pub struct SizeClass;

impl SchedulerPolicy for SizeClass {
    fn name(&self) -> &'static str {
        "size_class"
    }

    fn next_batch(&mut self, q: &mut AdmissionQueue, capacity: usize) -> Vec<Request> {
        let mut batch = Vec::with_capacity(capacity);
        let Some(anchor) = q.front().map(|r| r.class) else { return batch };
        while batch.len() < capacity {
            let Some(r) = q.pop_first_where(|r| r.class == anchor) else { break };
            batch.push(r);
        }
        while batch.len() < capacity {
            let Some(r) = q.pop_front() else { break };
            batch.push(r);
        }
        batch
    }
}

/// Weighted-fair queueing across tenants (deficit round robin): each
/// tenant accrues credit proportional to its weight and spends one credit
/// per scheduled request, so under saturation completed-request shares
/// converge to the weight ratio regardless of arrival shares.
#[derive(Debug)]
pub struct WeightedFair {
    weights: Vec<u64>,
    credit: Vec<i64>,
}

impl WeightedFair {
    /// Creates the policy for tenants with the given weights.
    #[must_use]
    pub fn new(weights: Vec<u64>) -> Self {
        let n = weights.len();
        WeightedFair { weights, credit: vec![0; n] }
    }
}

impl SchedulerPolicy for WeightedFair {
    fn name(&self) -> &'static str {
        "weighted_fair"
    }

    fn next_batch(&mut self, q: &mut AdmissionQueue, capacity: usize) -> Vec<Request> {
        // A tenant whose backlog drained loses its stale credit (standard
        // DRR: deficit resets when the queue empties) so it cannot hoard
        // service for later.
        for (t, c) in self.credit.iter_mut().enumerate() {
            if q.queued_of(t) == 0 {
                *c = 0;
            }
        }
        let mut batch = Vec::with_capacity(capacity);
        while batch.len() < capacity && !q.is_empty() {
            // Top up a quantum whenever no backlogged tenant has credit.
            let backlogged = |credit: &[i64]| {
                (0..credit.len())
                    .filter(|&t| q.queued_of(t) > 0)
                    .max_by_key(|&t| (credit[t], std::cmp::Reverse(t)))
            };
            let Some(best) = backlogged(&self.credit) else { break };
            if self.credit[best] <= 0 {
                for (t, c) in self.credit.iter_mut().enumerate() {
                    if q.queued_of(t) > 0 {
                        *c += self.weights[t] as i64;
                    }
                }
            }
            let Some(pick) = backlogged(&self.credit) else { break };
            let Some(r) = q.pop_first_where(|r| r.tenant == pick) else { break };
            self.credit[pick] -= 1;
            batch.push(r);
        }
        batch
    }

    fn snapshot(&self) -> Json {
        // Non-negative credits go out as UInt — the shape the JSON text
        // parses back to — so a snapshot survives render→parse exactly.
        Json::arr(self.credit.iter().map(|&c| match u64::try_from(c) {
            Ok(u) => Json::UInt(u),
            Err(_) => Json::Int(c),
        }))
    }

    fn restore(&mut self, state: &Json) -> Result<(), String> {
        let Json::Arr(items) = state else {
            return Err("weighted_fair snapshot must be an array of credits".into());
        };
        if items.len() != self.credit.len() {
            return Err(format!(
                "weighted_fair snapshot has {} credits for {} tenants",
                items.len(),
                self.credit.len()
            ));
        }
        for (slot, item) in self.credit.iter_mut().zip(items) {
            *slot = match *item {
                Json::Int(i) => i,
                Json::UInt(u) => {
                    i64::try_from(u).map_err(|_| "weighted_fair credit out of range".to_string())?
                }
                _ => return Err("weighted_fair credits must be integers".into()),
            };
        }
        Ok(())
    }
}

/// Resolves a policy by registry name, sized for `weights.len()` tenants.
#[must_use]
pub fn policy_by_name_with_weights(
    name: &str,
    weights: &[u64],
) -> Option<Box<dyn SchedulerPolicy>> {
    match name {
        "fifo" => Some(Box::new(Fifo)),
        "size_class" => Some(Box::new(SizeClass)),
        "weighted_fair" => Some(Box::new(WeightedFair::new(weights.to_vec()))),
        _ => None,
    }
}

/// Whether `name` names a known policy (weight-free lookup for listings
/// and validation).
#[must_use]
pub fn policy_by_name(name: &str) -> Option<&'static str> {
    ["fifo", "size_class", "weighted_fair"].into_iter().find(|&p| p == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::AdmissionQueue;

    fn queue_with(reqs: &[(usize, u16)]) -> AdmissionQueue {
        let n_tenants = reqs.iter().map(|r| r.0).max().unwrap_or(0) + 1;
        let mut q = AdmissionQueue::new(1024, vec![1024; n_tenants]);
        for (id, &(tenant, class)) in reqs.iter().enumerate() {
            q.offer(crate::queue::Request { id: id as u64, tenant, class, arrival_ns: id as u64 });
        }
        q
    }

    #[test]
    fn fifo_preserves_arrival_order() {
        let mut q = queue_with(&[(0, 1), (1, 2), (0, 1), (1, 3)]);
        let batch = Fifo.next_batch(&mut q, 3);
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn size_class_prefers_the_anchor_class() {
        let mut q = queue_with(&[(0, 5), (0, 9), (0, 5), (0, 5), (0, 9)]);
        let batch = SizeClass.next_batch(&mut q, 4);
        // Three class-5 requests first (ids 0,2,3), then FIFO fallback (1).
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 2, 3, 1]);
    }

    #[test]
    fn weighted_fair_tracks_weights_under_backlog() {
        let reqs: Vec<(usize, u16)> = (0..40).map(|i| (i % 2, 0u16)).collect();
        let mut q = queue_with(&reqs);
        let mut wf = WeightedFair::new(vec![3, 1]);
        let batch = wf.next_batch(&mut q, 16);
        let t0 = batch.iter().filter(|r| r.tenant == 0).count();
        let t1 = batch.iter().filter(|r| r.tenant == 1).count();
        assert_eq!(t0 + t1, 16);
        assert_eq!(t0, 12, "3:1 weights over 16 slots give 12:4, got {t0}:{t1}");
    }

    #[test]
    fn weighted_fair_serves_the_only_backlogged_tenant() {
        let mut q = queue_with(&[(1, 0), (1, 0), (1, 0)]);
        let mut wf = WeightedFair::new(vec![100, 1]);
        let batch = wf.next_batch(&mut q, 8);
        assert_eq!(batch.len(), 3);
        assert!(batch.iter().all(|r| r.tenant == 1));
    }

    #[test]
    fn weighted_fair_snapshot_round_trips_mid_backlog() {
        let reqs: Vec<(usize, u16)> = (0..40).map(|i| (i % 2, 0u16)).collect();
        let mut q = queue_with(&reqs);
        let mut wf = WeightedFair::new(vec![3, 1]);
        wf.next_batch(&mut q, 10); // leaves non-zero credits behind
        let state = wf.snapshot();
        let mut q2 = q.clone();
        let mut restored = WeightedFair::new(vec![3, 1]);
        restored.restore(&state).unwrap();
        assert_eq!(restored.next_batch(&mut q2, 16), wf.next_batch(&mut q, 16));
        // Mismatched snapshots are rejected, not silently accepted.
        assert!(WeightedFair::new(vec![1]).restore(&state).is_err());
        assert!(restored.restore(&Json::from("nope")).is_err());
    }

    #[test]
    fn stateless_policies_snapshot_null() {
        assert_eq!(Fifo.snapshot(), Json::Null);
        let mut f = Fifo;
        assert!(f.restore(&Json::Null).is_ok());
        assert!(f.restore(&Json::from(1u64)).is_err());
    }

    #[test]
    fn registry_resolves_policies() {
        for p in ["fifo", "size_class", "weighted_fair"] {
            assert!(policy_by_name(p).is_some());
            assert_eq!(policy_by_name_with_weights(p, &[1, 1]).unwrap().name(), p);
        }
        assert!(policy_by_name("lifo").is_none());
        assert!(policy_by_name_with_weights("lifo", &[1]).is_none());
    }
}
