//! Log-bucketed latency histograms and SLO percentile accounting.
//!
//! Latencies are recorded in nanoseconds into power-of-two octaves with
//! four sub-buckets each (HdrHistogram-style, ~19% worst-case relative
//! error) — pure integer bit-twiddling, no transcendental functions, so
//! quantiles are bit-identical on every platform. Quantiles report the
//! lower bound of the containing bucket, which keeps them deterministic
//! and conservative.

use pimulator::report::Json;

/// Sub-buckets per octave (power of two).
const SUBS: u64 = 4;
/// log2([`SUBS`]).
const SUB_BITS: u32 = 2;
/// Total buckets: values 0..4 get exact buckets, then 4 sub-buckets for
/// each of the remaining 62 octaves.
const BUCKETS: usize = (SUBS as usize) + 62 * (SUBS as usize);

/// The bucket index holding `v`.
fn bucket_of(v: u64) -> usize {
    if v < SUBS {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros();
    let sub = (v >> (octave - SUB_BITS)) & (SUBS - 1);
    (SUBS + (u64::from(octave) - u64::from(SUB_BITS)) * SUBS + sub) as usize
}

/// The smallest value mapping to bucket `idx` (the quantile estimate).
fn lower_bound(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUBS {
        return idx;
    }
    let octave = (idx - SUBS) / SUBS + u64::from(SUB_BITS);
    let sub = (idx - SUBS) % SUBS;
    (1 << octave) + sub * (1 << (octave - u64::from(SUB_BITS)))
}

/// A log-bucketed latency histogram over nanosecond samples.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { counts: vec![0; BUCKETS], total: 0, sum_ns: 0, max_ns: 0 }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, ns: u64) {
        self.counts[bucket_of(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of the exact (unbucketed) samples, ns.
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.total as f64
        }
    }

    /// Largest exact sample, ns.
    #[must_use]
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The `q`-quantile (`0.0..=1.0`) as the lower bound of the bucket
    /// holding the ⌈q·n⌉-th smallest sample; 0 for an empty histogram.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return lower_bound(idx);
            }
        }
        lower_bound(BUCKETS - 1)
    }

    /// `(p50, p95, p99)` in ns — the SLO triple every report uses.
    #[must_use]
    pub fn slo_triple(&self) -> (u64, u64, u64) {
        (self.quantile_ns(0.50), self.quantile_ns(0.95), self.quantile_ns(0.99))
    }

    /// Folds another histogram's population into this one (bucket-wise;
    /// exact because both sides share the same bucket boundaries).
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

impl LatencyHistogram {
    /// Serializes for a checkpoint: `[total, sum_ns, max_ns, [idx,
    /// count]...]` with only the occupied buckets listed (the histogram
    /// is sparse in practice).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut items =
            vec![Json::from(self.total), Json::from(self.sum_ns), Json::from(self.max_ns)];
        for (idx, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                items.push(Json::arr([Json::from(idx as u64), Json::from(c)]));
            }
        }
        Json::Arr(items)
    }

    /// Rebuilds a histogram from [`LatencyHistogram::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message on a malformed snapshot (wrong shape, a bucket
    /// index out of range, or counts that do not sum to the total).
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let Json::Arr(items) = j else { return Err("histogram snapshot must be an array".into()) };
        let uint = |j: &Json| -> Result<u64, String> {
            match *j {
                Json::UInt(u) => Ok(u),
                _ => Err("histogram snapshot fields must be unsigned integers".into()),
            }
        };
        let [total, sum_ns, max_ns, buckets @ ..] = items.as_slice() else {
            return Err("histogram snapshot is too short".into());
        };
        let mut h = LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: uint(total)?,
            sum_ns: uint(sum_ns)?,
            max_ns: uint(max_ns)?,
        };
        for pair in buckets {
            let Json::Arr(p) = pair else { return Err("histogram bucket must be a pair".into()) };
            let [idx, count] = p.as_slice() else {
                return Err("histogram bucket must be a pair".into());
            };
            let idx = uint(idx)? as usize;
            if idx >= BUCKETS {
                return Err(format!("histogram bucket index {idx} out of range"));
            }
            h.counts[idx] = uint(count)?;
        }
        if h.counts.iter().sum::<u64>() != h.total {
            return Err("histogram bucket counts do not sum to the total".into());
        }
        Ok(h)
    }
}

/// The queue-wait / transfer / execute / total split of one latency
/// population (per tenant), reusing the `ExecutionTimeline` phase
/// boundaries the rest of the repo reports.
#[derive(Debug, Clone, Default)]
pub struct LatencySplit {
    /// Time from arrival to batch start.
    pub queue: LatencyHistogram,
    /// CPU→DPU plus DPU→CPU transfer time of the request's round.
    pub transfer: LatencyHistogram,
    /// Kernel time until the request's slot finished.
    pub execute: LatencyHistogram,
    /// Arrival-to-completion.
    pub total: LatencyHistogram,
}

impl LatencySplit {
    /// Records one completed request's phase breakdown.
    pub fn record(&mut self, queue_ns: u64, transfer_ns: u64, execute_ns: u64) {
        self.queue.record(queue_ns);
        self.transfer.record(transfer_ns);
        self.execute.record(execute_ns);
        self.total.record(queue_ns + transfer_ns + execute_ns);
    }

    /// Folds another split's populations into this one, phase by phase.
    pub fn merge(&mut self, other: &Self) {
        self.queue.merge(&other.queue);
        self.transfer.merge(&other.transfer);
        self.execute.merge(&other.execute);
        self.total.merge(&other.total);
    }

    /// Serializes all four phases for a checkpoint.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::arr([
            self.queue.to_json(),
            self.transfer.to_json(),
            self.execute.to_json(),
            self.total.to_json(),
        ])
    }

    /// Rebuilds a split from [`LatencySplit::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message on a malformed snapshot.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let Json::Arr(phases) = j else { return Err("split snapshot must be an array".into()) };
        let [queue, transfer, execute, total] = phases.as_slice() else {
            return Err("split snapshot must hold four phases".into());
        };
        Ok(LatencySplit {
            queue: LatencyHistogram::from_json(queue)?,
            transfer: LatencyHistogram::from_json(transfer)?,
            execute: LatencyHistogram::from_json(execute)?,
            total: LatencyHistogram::from_json(total)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_exact_below_four() {
        for v in 0..4u64 {
            assert_eq!(lower_bound(bucket_of(v)), v);
        }
        let mut last = 0;
        for v in [4u64, 5, 7, 8, 100, 1023, 1024, 1_000_000, u64::MAX / 2] {
            let b = bucket_of(v);
            assert!(lower_bound(b) <= v, "lb({b}) > {v}");
            assert!(b >= last, "bucket index regressed at {v}");
            last = b;
        }
        // A bucket's lower bound maps back to the same bucket.
        for idx in 0..BUCKETS {
            assert_eq!(bucket_of(lower_bound(idx)), idx);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [10u64, 99, 1_000, 123_456, 10_000_000] {
            let lb = lower_bound(bucket_of(v));
            assert!(lb <= v && v - lb <= v / 4, "error at {v}: lb {lb}");
        }
    }

    #[test]
    fn quantiles_of_a_known_population() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(v * 1000);
        }
        assert_eq!(h.count(), 100);
        let (p50, p95, p99) = h.slo_triple();
        // Bucket lower bounds are conservative but within a sub-bucket of
        // the exact rank value.
        assert!((40_000..=50_000).contains(&p50), "p50 {p50}");
        assert!((80_000..=95_000).contains(&p95), "p95 {p95}");
        assert!((96_000..=99_000).contains(&p99), "p99 {p99}");
        assert!(p50 <= p95 && p95 <= p99);
        assert_eq!(h.max_ns(), 100_000);
        assert!((h.mean_ns() - 50_500.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.slo_triple(), (0, 0, 0));
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
    }

    #[test]
    fn merging_is_equivalent_to_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for v in [5u64, 70, 900, 12_000] {
            a.record(v);
            both.record(v);
        }
        for v in [3u64, 450, 80_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.max_ns(), both.max_ns());
        assert_eq!(a.slo_triple(), both.slo_triple());
        assert!((a.mean_ns() - both.mean_ns()).abs() < 1e-9);
    }

    #[test]
    fn histogram_json_round_trips_through_text() {
        let mut s = LatencySplit::default();
        for v in [5u64, 70, 900, 12_000, 12_001, 80_000] {
            s.record(v, v * 2, v * 3);
        }
        let text = s.to_json().render_pretty();
        let back = LatencySplit::from_json(&Json::parse(&text).unwrap()).unwrap();
        for (a, b) in [
            (&s.queue, &back.queue),
            (&s.transfer, &back.transfer),
            (&s.execute, &back.execute),
            (&s.total, &back.total),
        ] {
            assert_eq!(a.count(), b.count());
            assert_eq!(a.max_ns(), b.max_ns());
            assert_eq!(a.slo_triple(), b.slo_triple());
            assert_eq!(a.counts, b.counts);
            assert_eq!(a.sum_ns, b.sum_ns);
        }
    }

    #[test]
    fn histogram_from_json_rejects_corruption() {
        let mut h = LatencyHistogram::new();
        h.record(100);
        assert!(LatencyHistogram::from_json(&Json::Null).is_err());
        assert!(LatencyHistogram::from_json(&Json::arr([Json::from(1u64)])).is_err());
        // A count that disagrees with the total is caught.
        let mut bad = h.to_json();
        if let Json::Arr(items) = &mut bad {
            items[0] = Json::from(99u64);
        }
        assert!(LatencyHistogram::from_json(&bad).is_err());
    }

    #[test]
    fn split_total_is_the_sum_of_phases() {
        let mut s = LatencySplit::default();
        s.record(10, 20, 30);
        assert_eq!(s.total.count(), 1);
        assert_eq!(s.total.max_ns(), 60);
        assert_eq!(s.queue.max_ns(), 10);
        assert_eq!(s.transfer.max_ns(), 20);
        assert_eq!(s.execute.max_ns(), 30);
    }
}
