//! The DPU runtime library: synchronization primitives built from the ISA's
//! `acquire`/`release` atomic bits, mirroring the UPMEM SDK's software
//! barriers and mutexes (paper §II-B: "They can also synchronize with each
//! other by using mutexes, barriers, or semaphores allocated in UPMEM-PIM's
//! atomic memory region").
//!
//! Barriers are sense-reversing and entirely software: arrival counting in
//! WRAM under a mutex, plus a busy-wait on the published sense word. The
//! busy-wait executes real instructions, so — exactly as the paper observes
//! for `HST-L`/`TRNS` — synchronization shows up in the instruction mix and
//! wastes issue slots.

use pim_isa::Cond;

use crate::builder::KernelBuilder;

/// A mutex backed by one atomic bit.
#[derive(Debug, Clone, Copy)]
pub struct Mutex {
    bit: u32,
}

impl Mutex {
    /// Allocates an atomic bit for a new mutex.
    pub fn alloc(k: &mut KernelBuilder) -> Self {
        Mutex { bit: k.alloc_atomic_bit() }
    }

    /// The underlying atomic-bit index.
    #[must_use]
    pub fn bit(&self) -> u32 {
        self.bit
    }

    /// Emits a blocking lock (the `acquire` busy-waits in hardware).
    pub fn lock(&self, k: &mut KernelBuilder) {
        k.acquire(self.bit as i32);
    }

    /// Emits an unlock.
    pub fn unlock(&self, k: &mut KernelBuilder) {
        k.release(self.bit as i32);
    }
}

/// A sense-reversing barrier for `n_tasklets` tasklets.
///
/// Allocation reserves one atomic bit and `(2 + n_tasklets)` WRAM words:
/// an arrival counter, the published sense, and a per-tasklet local sense.
#[derive(Debug, Clone, Copy)]
pub struct Barrier {
    n_tasklets: u32,
    mutex: Mutex,
    count_addr: u32,
    sense_addr: u32,
    local_base: u32,
}

impl Barrier {
    /// Allocates barrier state for `n_tasklets` participants.
    ///
    /// # Panics
    ///
    /// Panics if `n_tasklets` is zero.
    pub fn alloc(k: &mut KernelBuilder, n_tasklets: u32) -> Self {
        assert!(n_tasklets > 0, "barrier needs at least one participant");
        let mutex = Mutex::alloc(k);
        let count_addr = k.alloc_wram(4, 4);
        let sense_addr = k.alloc_wram(4, 4);
        let local_base = k.alloc_wram(4 * n_tasklets, 4);
        Barrier { n_tasklets, mutex, count_addr, sense_addr, local_base }
    }

    /// Emits a barrier wait using three caller-provided scratch registers
    /// (all three are clobbered).
    ///
    /// Every participating tasklet must execute this code with the same
    /// barrier; a tasklet that skips it deadlocks the others — the same
    /// contract as the SDK's `barrier_wait`.
    pub fn wait(&self, k: &mut KernelBuilder, scratch: [pim_isa::Reg; 3]) {
        let [s0, s1, s2] = scratch;
        let not_last = k.fresh_label("bar_not_last");
        let spin = k.fresh_label("bar_spin");
        let done = k.fresh_label("bar_done");

        // my_sense = local_sense[tid] ^= 1
        k.tid(s0);
        k.sll(s1, s0, 2);
        k.movi(s2, self.local_base as i32);
        k.add(s2, s2, s1);
        k.lw(s1, s2, 0);
        k.alu(pim_isa::AluOp::Xor, s1, s1, 1);
        k.sw(s1, s2, 0);
        // count++ under the mutex
        self.mutex.lock(k);
        k.movi(s2, self.count_addr as i32);
        k.lw(s0, s2, 0);
        k.add(s0, s0, 1);
        k.branch(Cond::Ne, s0, self.n_tasklets as i32, &not_last);
        // Last arrival: reset the counter and publish the new sense.
        k.movi(s0, 0);
        k.sw(s0, s2, 0);
        k.movi(s2, self.sense_addr as i32);
        k.sw(s1, s2, 0);
        self.mutex.unlock(k);
        k.jump(&done);
        // Not last: store the counter, drop the lock, and spin on the sense.
        k.place(&not_last);
        k.sw(s0, s2, 0);
        self.mutex.unlock(k);
        k.movi(s2, self.sense_addr as i32);
        k.place(&spin);
        k.lw(s0, s2, 0);
        k.branch(Cond::Ne, s0, s1, &spin);
        k.place(&done);
    }

    /// Number of participating tasklets.
    #[must_use]
    pub fn n_tasklets(&self) -> u32 {
        self.n_tasklets
    }
}

/// A counting semaphore, as in the SDK's `sem_give`/`sem_take` (paper
/// §II-B lists semaphores among the supported primitives).
///
/// Backed by a WRAM counter under a mutex; `take` busy-waits while the
/// count is zero, so — like every UPMEM synchronization primitive — waiting
/// consumes issue slots.
#[derive(Debug, Clone, Copy)]
pub struct Semaphore {
    mutex: Mutex,
    count_addr: u32,
}

impl Semaphore {
    /// Allocates a semaphore with the given initial count.
    pub fn alloc(k: &mut KernelBuilder, initial: i32) -> Self {
        let mutex = Mutex::alloc(k);
        let count_addr = k.global_words(&format!("sem${}", mutex.bit()), &[initial]);
        Semaphore { mutex, count_addr }
    }

    /// Emits `take` (P): busy-waits until the count is positive, then
    /// decrements it. Clobbers both scratch registers.
    pub fn take(&self, k: &mut KernelBuilder, scratch: [pim_isa::Reg; 2]) {
        let [s0, s1] = scratch;
        let retry = k.label_here("sem_retry");
        self.mutex.lock(k);
        k.movi(s1, self.count_addr as i32);
        k.lw(s0, s1, 0);
        let available = k.fresh_label("sem_avail");
        k.branch(Cond::Ne, s0, 0, &available);
        // Zero: drop the lock and spin.
        self.mutex.unlock(k);
        k.jump(&retry);
        k.place(&available);
        k.alu(pim_isa::AluOp::Sub, s0, s0, 1);
        k.sw(s0, s1, 0);
        self.mutex.unlock(k);
    }

    /// Emits `give` (V): increments the count. Clobbers both scratch
    /// registers.
    pub fn give(&self, k: &mut KernelBuilder, scratch: [pim_isa::Reg; 2]) {
        let [s0, s1] = scratch;
        self.mutex.lock(k);
        k.movi(s1, self.count_addr as i32);
        k.lw(s0, s1, 0);
        k.add(s0, s0, 1);
        k.sw(s0, s1, 0);
        self.mutex.unlock(k);
    }
}

/// A runtime bump allocator over the WRAM heap — the SDK's `mem_alloc`
/// (paper §II-C: "a very simple memory allocator which simply allocates
/// `size` amount of region in WRAM's heap in an incremental manner" and
/// cannot free).
///
/// The heap cursor lives in a WRAM word initialized to the program's
/// `heap_base`; allocations are mutex-serialized and 8-byte aligned.
#[derive(Debug, Clone, Copy)]
pub struct HeapAllocator {
    mutex: Mutex,
    cursor_addr: u32,
}

impl HeapAllocator {
    /// Reserves the allocator state. The host (or `init`, below) must seed
    /// the cursor with the program's heap base before first use.
    pub fn alloc(k: &mut KernelBuilder) -> Self {
        let mutex = Mutex::alloc(k);
        let cursor_addr = k.global_zeroed("heap_cursor", 4);
        HeapAllocator { mutex, cursor_addr }
    }

    /// Emits one-time initialization (run by tasklet 0 before a barrier):
    /// seeds the cursor with `heap_base`, the SDK's `mem_reset()`.
    pub fn init(&self, k: &mut KernelBuilder, heap_base: u32, scratch: [pim_isa::Reg; 2]) {
        let [s0, s1] = scratch;
        k.movi(s0, (heap_base.div_ceil(8) * 8) as i32);
        k.movi(s1, self.cursor_addr as i32);
        k.sw(s0, s1, 0);
    }

    /// Emits `dst = mem_alloc(size_reg)`: atomically bumps the heap cursor
    /// by the (8-byte-rounded) size and returns the old cursor. Clobbers
    /// `scratch`.
    pub fn mem_alloc(
        &self,
        k: &mut KernelBuilder,
        dst: pim_isa::Reg,
        size: pim_isa::Reg,
        scratch: pim_isa::Reg,
    ) {
        self.mutex.lock(k);
        k.movi(scratch, self.cursor_addr as i32);
        k.lw(dst, scratch, 0);
        // cursor += round8(size)
        k.add(size, size, 7);
        k.alu(pim_isa::AluOp::And, size, size, !7);
        k.add(size, size, dst);
        k.sw(size, scratch, 0);
        self.mutex.unlock(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_isa::{InstrClass, Instruction};

    #[test]
    fn mutex_emits_acquire_release_pair() {
        let mut k = KernelBuilder::new();
        let m = Mutex::alloc(&mut k);
        m.lock(&mut k);
        m.unlock(&mut k);
        k.stop();
        let p = k.build().unwrap();
        assert!(matches!(p.instrs[0], Instruction::Acquire { .. }));
        assert!(matches!(p.instrs[1], Instruction::Release { .. }));
    }

    #[test]
    fn two_mutexes_use_distinct_bits() {
        let mut k = KernelBuilder::new();
        let a = Mutex::alloc(&mut k);
        let b = Mutex::alloc(&mut k);
        assert_ne!(a.bit(), b.bit());
    }

    #[test]
    fn barrier_wait_builds_and_references_sync() {
        let mut k = KernelBuilder::new();
        let bar = Barrier::alloc(&mut k, 4);
        let scratch = k.regs(["s0", "s1", "s2"]);
        bar.wait(&mut k, scratch);
        k.stop();
        let p = k.build().unwrap();
        let sync = p.instrs.iter().filter(|i| i.class() == InstrClass::Sync).count();
        assert_eq!(sync, 3, "lock + two unlock paths");
        // All branch targets must have been resolved in range.
        for i in &p.instrs {
            if let Instruction::Branch { target, .. } | Instruction::Jump { target } = i {
                assert!((*target as usize) < p.instrs.len());
            }
        }
    }

    #[test]
    fn barrier_reserves_wram_per_tasklet() {
        let mut k = KernelBuilder::new();
        let before = k.alloc_wram(0, 4);
        let bar = Barrier::alloc(&mut k, 16);
        let after = k.alloc_wram(0, 4);
        assert_eq!(bar.n_tasklets(), 16);
        // counter + sense + 16 local senses = 18 words.
        assert_eq!(after - before, 18 * 4);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_tasklet_barrier_panics() {
        let mut k = KernelBuilder::new();
        let _ = Barrier::alloc(&mut k, 0);
    }
}

#[cfg(test)]
mod sem_heap_tests {
    use super::*;
    use pim_isa::Cond;

    #[test]
    fn semaphore_emits_balanced_sync() {
        let mut k = KernelBuilder::new();
        let sem = Semaphore::alloc(&mut k, 2);
        let scratch = k.regs(["s0", "s1"]);
        sem.take(&mut k, scratch);
        sem.give(&mut k, scratch);
        k.stop();
        let p = k.build().unwrap();
        let acquires =
            p.instrs.iter().filter(|i| matches!(i, pim_isa::Instruction::Acquire { .. })).count();
        let releases =
            p.instrs.iter().filter(|i| matches!(i, pim_isa::Instruction::Release { .. })).count();
        assert_eq!(acquires, 2, "take + give each lock once");
        assert_eq!(releases, 3, "take has a retry-path unlock");
    }

    #[test]
    fn heap_allocator_rounds_and_bumps() {
        let mut k = KernelBuilder::new();
        let heap = HeapAllocator::alloc(&mut k);
        let [t, a, b, sz, s0, s1] = k.regs(["t", "a", "b", "sz", "s0", "s1"]);
        let out = k.global_zeroed("out", 8);
        k.tid(t);
        let go = k.fresh_label("go");
        k.branch(Cond::Ne, t, 0, &go);
        // heap_base is only known post-build; use a fixed fake base.
        heap.init(&mut k, 4096, [s0, s1]);
        k.place(&go);
        // Every tasklet allocates 12 bytes (rounds to 16).
        k.movi(sz, 12);
        heap.mem_alloc(&mut k, a, sz, s0);
        k.movi(sz, 4);
        heap.mem_alloc(&mut k, b, sz, s0);
        // Tasklet 0 publishes its two pointers.
        let done = k.fresh_label("done");
        k.branch(Cond::Ne, t, 0, &done);
        k.movi(s0, out as i32);
        k.sw(a, s0, 0);
        k.sw(b, s0, 4);
        k.place(&done);
        k.stop();
        let p = k.build().unwrap();
        assert!(p.symbol("heap_cursor").is_some());
        assert!(p.instrs.len() > 10);
    }
}
