//! # pim-asm
//!
//! The software toolchain of the simulation framework: a textual
//! **assembler**, a flexible **linker**, and a Rust **kernel-builder eDSL**
//! with a small DPU runtime library (barriers, mutexes, a WRAM heap).
//!
//! The paper's PIMulator reuses UPMEM's LLVM compiler as-is but replaces the
//! SDK's linker/assembler with a custom one, because the stock linker is
//! "specifically tied to UPMEM-PIM's microarchitecture": it refuses programs
//! whose IRAM/WRAM footprint exceeds the physical capacities, which blocks
//! architectural exploration such as the cache-vs-scratchpad study (§V-D).
//! This crate plays the same role. In particular, [`LinkOptions`] can relax
//! the WRAM capacity check so a program's data image may exceed 64 KB and be
//! re-mapped onto the DRAM-backed flat address space by the cache-centric
//! DPU model.
//!
//! Since no UPMEM C compiler exists for this ISA, kernels are authored
//! either in assembly text ([`assemble`]) or — the way the bundled PrIM
//! suite is written — through [`KernelBuilder`], a structured instruction
//! emitter (see `DESIGN.md` §1 for why this substitution preserves the
//! paper's results).
//!
//! # Example: assembling text
//!
//! ```
//! use pim_asm::assemble;
//!
//! let program = assemble(
//!     r#"
//!     .data
//! counter: .word 0
//!     .text
//! main:
//!     movi r0, counter
//!     lw   r1, 0(r0)
//!     add  r1, r1, 1
//!     sw   r1, 0(r0)
//!     stop
//! "#,
//! )
//! .unwrap();
//! assert_eq!(program.instrs.len(), 5);
//! assert_eq!(program.symbol("counter").unwrap().addr, 0);
//! ```
//!
//! # Example: building a kernel in Rust
//!
//! ```
//! use pim_asm::KernelBuilder;
//! use pim_isa::{AluOp, Cond};
//!
//! let mut k = KernelBuilder::new();
//! let i = k.reg("i");
//! k.movi(i, 10);
//! let top = k.label_here("loop");
//! k.alu(AluOp::Sub, i, i, 1);
//! k.branch(Cond::Ne, i, 0, &top);
//! k.stop();
//! let program = k.build().unwrap();
//! assert_eq!(program.instrs.len(), 4);
//! ```

pub mod asm_text;
pub mod builder;
pub mod program;
pub mod rt;

pub use asm_text::{assemble, assemble_with, disassemble, AsmError};
pub use builder::{BuildError, KernelBuilder, LabelId};
pub use program::{DpuProgram, LinkError, LinkOptions, Symbol};
pub use rt::{Barrier, HeapAllocator, Mutex, Semaphore};
