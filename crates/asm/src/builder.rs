//! A structured instruction emitter (the "kernel builder" eDSL).
//!
//! The builder plays the role of UPMEM's C compiler in the simulation
//! toolchain: kernels — including the whole bundled PrIM suite — are
//! authored as Rust functions that emit the machine-level instruction
//! stream consumed by the cycle-level simulator. The builder manages
//! labels and fixups, a register namespace, WRAM data placement, and
//! atomic-bit allocation, and finishes by validating the program against
//! the link options exactly like the textual assembler does.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use pim_isa::{AluOp, Cond, Instruction, Operand, Reg, Width, NUM_GP_REGS};

use crate::program::{DpuProgram, LinkError, LinkOptions, Symbol};

/// A label created by a [`KernelBuilder`], used as a branch/jump target.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LabelId(String);

impl LabelId {
    /// The label's name (unique within its builder).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.0
    }
}

/// An error produced when finalizing a built kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A branch or jump referenced a label that was never placed.
    UndefinedLabel(String),
    /// A label was placed twice.
    DuplicateLabel(String),
    /// More atomic bits were allocated than the hardware provides.
    AtomicBitsExhausted,
    /// The assembled program failed link-time validation.
    Link(LinkError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UndefinedLabel(l) => write!(f, "label `{l}` was never placed"),
            BuildError::DuplicateLabel(l) => write!(f, "label `{l}` placed twice"),
            BuildError::AtomicBitsExhausted => write!(f, "out of atomic bits"),
            BuildError::Link(e) => write!(f, "link error: {e}"),
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::Link(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinkError> for BuildError {
    fn from(e: LinkError) -> Self {
        BuildError::Link(e)
    }
}

/// Builds a [`DpuProgram`] instruction by instruction.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Default)]
pub struct KernelBuilder {
    instrs: Vec<Instruction>,
    /// (instruction index, label) pairs whose target needs resolution.
    fixups: Vec<(usize, String)>,
    labels: BTreeMap<String, u32>,
    fresh_counter: u32,
    /// Registers currently allocated, by name.
    reg_names: BTreeMap<String, Reg>,
    /// Free register pool (stack).
    free_regs: Vec<Reg>,
    initialized_pool: bool,
    /// WRAM image under construction.
    wram: Vec<u8>,
    /// Base WRAM byte address the image (and every baked address) starts at.
    wram_base: u32,
    /// First atomic-bit index this kernel allocates from.
    atomic_base: u32,
    symbols: BTreeMap<String, Symbol>,
    next_atomic_bit: u32,
}

impl KernelBuilder {
    /// Creates an empty builder allocating WRAM from address 0 and atomic
    /// bits from 0.
    #[must_use]
    pub fn new() -> Self {
        KernelBuilder::default()
    }

    /// Creates a builder whose WRAM allocations start at `wram_base` and
    /// whose atomic bits start at `atomic_base` — the *manual partitioning*
    /// a scratchpad-centric programming model forces onto co-located
    /// tenants (paper §V-C: transparency requires "non-trivial amount of
    /// changes to both co-located programs"; this constructor is exactly
    /// that change).
    #[must_use]
    pub fn with_partition(wram_base: u32, atomic_base: u32) -> Self {
        assert_eq!(wram_base % 8, 0, "WRAM partitions must be 8-byte aligned");
        KernelBuilder { wram_base, atomic_base, ..KernelBuilder::default() }
    }

    // ------------------------------------------------------------------
    // Registers
    // ------------------------------------------------------------------

    fn ensure_pool(&mut self) {
        if !self.initialized_pool {
            // Pop order r0, r1, r2, …
            self.free_regs = (0..NUM_GP_REGS).rev().map(Reg::r).collect();
            self.initialized_pool = true;
        }
    }

    /// Allocates a register under `name` (or returns the existing one with
    /// that name).
    ///
    /// # Panics
    ///
    /// Panics if all 24 general-purpose registers are in use — a kernel
    /// authoring error, reported eagerly with the offending name.
    pub fn reg(&mut self, name: &str) -> Reg {
        self.ensure_pool();
        if let Some(&r) = self.reg_names.get(name) {
            return r;
        }
        let r = self
            .free_regs
            .pop()
            .unwrap_or_else(|| panic!("out of registers while allocating `{name}`"));
        self.reg_names.insert(name.to_string(), r);
        r
    }

    /// Allocates several registers at once.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`KernelBuilder::reg`].
    pub fn regs<const N: usize>(&mut self, names: [&str; N]) -> [Reg; N] {
        names.map(|n| self.reg(n))
    }

    /// Releases a named register back to the pool.
    ///
    /// # Panics
    ///
    /// Panics if no register with that name is allocated.
    pub fn release_reg(&mut self, name: &str) {
        let r = self
            .reg_names
            .remove(name)
            .unwrap_or_else(|| panic!("release of unallocated register `{name}`"));
        self.free_regs.push(r);
    }

    /// Number of registers currently allocated.
    #[must_use]
    pub fn regs_in_use(&self) -> usize {
        self.reg_names.len()
    }

    // ------------------------------------------------------------------
    // Labels
    // ------------------------------------------------------------------

    /// Creates a unique label (not yet placed).
    pub fn fresh_label(&mut self, hint: &str) -> LabelId {
        self.fresh_counter += 1;
        LabelId(format!("{hint}${}", self.fresh_counter))
    }

    /// Places `label` at the current instruction position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already placed (duplicate placement is a
    /// kernel authoring error).
    pub fn place(&mut self, label: &LabelId) {
        let at = self.instrs.len() as u32;
        if self.labels.insert(label.0.clone(), at).is_some() {
            panic!("label `{}` placed twice", label.0);
        }
    }

    /// Creates a label with the given name and places it here.
    pub fn label_here(&mut self, name: &str) -> LabelId {
        let l = self.fresh_label(name);
        self.place(&l);
        l
    }

    /// The index the next emitted instruction will occupy.
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.instrs.len() as u32
    }

    // ------------------------------------------------------------------
    // WRAM data and atomic bits
    // ------------------------------------------------------------------

    fn align_wram(&mut self, align: u32) {
        debug_assert!(align.is_power_of_two());
        while !(self.wram_base + self.wram.len() as u32).is_multiple_of(align) {
            self.wram.push(0);
        }
    }

    /// Reserves `size` zeroed bytes of WRAM with the given alignment and
    /// returns the (absolute) byte address.
    pub fn alloc_wram(&mut self, size: u32, align: u32) -> u32 {
        self.align_wram(align);
        let addr = self.wram_base + self.wram.len() as u32;
        self.wram.resize(self.wram.len() + size as usize, 0);
        addr
    }

    /// Reserves a named, zeroed, word-aligned WRAM buffer visible to the
    /// host through the symbol table.
    pub fn global_zeroed(&mut self, name: &str, size: u32) -> u32 {
        let addr = self.alloc_wram(size, 4);
        self.symbols
            .insert(name.to_string(), Symbol { addr, size, space: pim_isa::AddressSpace::Wram });
        addr
    }

    /// Reserves a named WRAM buffer initialized with the given words.
    pub fn global_words(&mut self, name: &str, words: &[i32]) -> u32 {
        let addr = self.global_zeroed(name, words.len() as u32 * 4);
        for (i, w) in words.iter().enumerate() {
            let b = w.to_le_bytes();
            let at = (addr - self.wram_base) as usize + i * 4;
            self.wram[at..at + 4].copy_from_slice(&b);
        }
        addr
    }

    /// Allocates the next free atomic bit (checked at [`KernelBuilder::build`]).
    pub fn alloc_atomic_bit(&mut self) -> u32 {
        let bit = self.atomic_base + self.next_atomic_bit;
        self.next_atomic_bit += 1;
        bit
    }

    // ------------------------------------------------------------------
    // Instruction emission
    // ------------------------------------------------------------------

    /// Emits a raw instruction.
    pub fn emit(&mut self, i: Instruction) {
        self.instrs.push(i);
    }

    /// `rd = op(ra, rb)` where `rb` is a register or immediate.
    pub fn alu(&mut self, op: AluOp, rd: Reg, ra: Reg, rb: impl Into<Operand>) {
        self.emit(Instruction::Alu { op, rd, ra, rb: rb.into() });
    }

    /// `rd = ra + rb`.
    pub fn add(&mut self, rd: Reg, ra: Reg, rb: impl Into<Operand>) {
        self.alu(AluOp::Add, rd, ra, rb);
    }

    /// `rd = ra - rb`.
    pub fn sub(&mut self, rd: Reg, ra: Reg, rb: impl Into<Operand>) {
        self.alu(AluOp::Sub, rd, ra, rb);
    }

    /// `rd = ra * rb`.
    pub fn mul(&mut self, rd: Reg, ra: Reg, rb: impl Into<Operand>) {
        self.alu(AluOp::Mul, rd, ra, rb);
    }

    /// `rd = ra << rb`.
    pub fn sll(&mut self, rd: Reg, ra: Reg, rb: impl Into<Operand>) {
        self.alu(AluOp::Sll, rd, ra, rb);
    }

    /// `rd = ra >> rb` (logical).
    pub fn srl(&mut self, rd: Reg, ra: Reg, rb: impl Into<Operand>) {
        self.alu(AluOp::Srl, rd, ra, rb);
    }

    /// `rd = imm` (full 32-bit immediate).
    pub fn movi(&mut self, rd: Reg, imm: i32) {
        self.emit(Instruction::Movi { rd, imm });
    }

    /// `rd = ra` (register move, encoded as `add rd, ra, 0`).
    pub fn mov(&mut self, rd: Reg, ra: Reg) {
        self.alu(AluOp::Add, rd, ra, 0);
    }

    /// `rd = tasklet_id`.
    pub fn tid(&mut self, rd: Reg) {
        self.emit(Instruction::Tid { rd });
    }

    /// Word load: `rd = wram[base + offset]`.
    pub fn lw(&mut self, rd: Reg, base: Reg, offset: i32) {
        self.emit(Instruction::Load { width: Width::Word, signed: false, rd, base, offset });
    }

    /// Unsigned byte load.
    pub fn lbu(&mut self, rd: Reg, base: Reg, offset: i32) {
        self.emit(Instruction::Load { width: Width::Byte, signed: false, rd, base, offset });
    }

    /// Signed byte load.
    pub fn lb(&mut self, rd: Reg, base: Reg, offset: i32) {
        self.emit(Instruction::Load { width: Width::Byte, signed: true, rd, base, offset });
    }

    /// Word store: `wram[base + offset] = rs`.
    pub fn sw(&mut self, rs: Reg, base: Reg, offset: i32) {
        self.emit(Instruction::Store { width: Width::Word, rs, base, offset });
    }

    /// Byte store.
    pub fn sb(&mut self, rs: Reg, base: Reg, offset: i32) {
        self.emit(Instruction::Store { width: Width::Byte, rs, base, offset });
    }

    /// DMA `MRAM → WRAM` (`mram_read`): blocking transfer of `len` bytes.
    pub fn ldma(&mut self, wram: Reg, mram: Reg, len: impl Into<Operand>) {
        self.emit(Instruction::Ldma { wram, mram, len: len.into() });
    }

    /// DMA `WRAM → MRAM` (`mram_write`): blocking transfer of `len` bytes.
    pub fn sdma(&mut self, wram: Reg, mram: Reg, len: impl Into<Operand>) {
        self.emit(Instruction::Sdma { wram, mram, len: len.into() });
    }

    /// Conditional branch to `target`.
    pub fn branch(&mut self, cond: Cond, ra: Reg, rb: impl Into<Operand>, target: &LabelId) {
        self.fixups.push((self.instrs.len(), target.0.clone()));
        self.emit(Instruction::Branch { cond, ra, rb: rb.into(), target: u32::MAX });
    }

    /// Unconditional jump to `target`.
    pub fn jump(&mut self, target: &LabelId) {
        self.fixups.push((self.instrs.len(), target.0.clone()));
        self.emit(Instruction::Jump { target: u32::MAX });
    }

    /// Call: `rd = return address; pc = target`.
    pub fn jal(&mut self, rd: Reg, target: &LabelId) {
        self.fixups.push((self.instrs.len(), target.0.clone()));
        self.emit(Instruction::Jal { rd, target: u32::MAX });
    }

    /// Indirect jump (return).
    pub fn jr(&mut self, ra: Reg) {
        self.emit(Instruction::Jr { ra });
    }

    /// Acquire an atomic bit (busy-waits while held elsewhere).
    pub fn acquire(&mut self, bit: impl Into<Operand>) {
        self.emit(Instruction::Acquire { bit: bit.into() });
    }

    /// Release an atomic bit.
    pub fn release(&mut self, bit: impl Into<Operand>) {
        self.emit(Instruction::Release { bit: bit.into() });
    }

    /// Terminate the executing tasklet.
    pub fn stop(&mut self) {
        self.emit(Instruction::Stop);
    }

    /// No-op.
    pub fn nop(&mut self) {
        self.emit(Instruction::Nop);
    }

    /// Emits `dst = base + tasklet_id * stride` — the ubiquitous
    /// "where is my slice" computation of SPMD kernels.
    pub fn tasklet_slot(&mut self, dst: Reg, base: u32, stride: u32) {
        self.tid(dst);
        self.mul(dst, dst, stride as i32);
        self.add(dst, dst, base as i32);
    }

    // ------------------------------------------------------------------
    // Finalization
    // ------------------------------------------------------------------

    /// Finalizes the program with default [`LinkOptions`].
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for unresolved labels, exhausted atomic
    /// bits, or link-time validation failures.
    pub fn build(self) -> Result<DpuProgram, BuildError> {
        self.build_with(&LinkOptions::default())
    }

    /// Finalizes the program with explicit link options.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for unresolved labels, exhausted atomic
    /// bits, or link-time validation failures.
    /// Note: a builder constructed with [`KernelBuilder::with_partition`]
    /// places its image at its own `wram_base`; `opts.wram_base` is ignored
    /// on this path (it applies to the textual-assembler flow).
    pub fn build_with(mut self, opts: &LinkOptions) -> Result<DpuProgram, BuildError> {
        if self.atomic_base + self.next_atomic_bit > opts.layout.atomic_bits {
            return Err(BuildError::AtomicBitsExhausted);
        }
        for (at, label) in &self.fixups {
            let &target =
                self.labels.get(label).ok_or_else(|| BuildError::UndefinedLabel(label.clone()))?;
            match &mut self.instrs[*at] {
                Instruction::Branch { target: t, .. }
                | Instruction::Jump { target: t }
                | Instruction::Jal { target: t, .. } => *t = target,
                other => unreachable!("fixup on non-control instruction {other}"),
            }
        }
        let heap_base = {
            // Heap starts 8-byte aligned after static data.
            let end = self.wram_base + self.wram.len() as u32;
            end.div_ceil(8) * 8
        };
        let program = DpuProgram {
            instrs: self.instrs,
            wram_init: self.wram,
            wram_base: self.wram_base,
            symbols: self.symbols,
            heap_base,
            atomic_base: self.atomic_base,
            atomic_bits_used: self.next_atomic_bit,
        };
        program.validate(opts)?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_isa::AddressSpace;

    #[test]
    fn simple_loop_builds_and_resolves_labels() {
        let mut k = KernelBuilder::new();
        let i = k.reg("i");
        k.movi(i, 10);
        let top = k.label_here("loop");
        k.sub(i, i, 1);
        k.branch(Cond::Ne, i, 0, &top);
        k.stop();
        let p = k.build().unwrap();
        assert_eq!(p.instrs.len(), 4);
        assert_eq!(
            p.instrs[2],
            Instruction::Branch { cond: Cond::Ne, ra: Reg::r(0), rb: Operand::Imm(0), target: 1 }
        );
    }

    #[test]
    fn forward_labels_resolve() {
        let mut k = KernelBuilder::new();
        let done = k.fresh_label("done");
        let r = k.reg("r");
        k.movi(r, 1);
        k.jump(&done);
        k.nop();
        k.place(&done);
        k.stop();
        let p = k.build().unwrap();
        assert_eq!(p.instrs[1], Instruction::Jump { target: 3 });
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut k = KernelBuilder::new();
        let ghost = k.fresh_label("ghost");
        k.jump(&ghost);
        k.stop();
        assert!(matches!(k.build(), Err(BuildError::UndefinedLabel(_))));
    }

    #[test]
    #[should_panic(expected = "placed twice")]
    fn duplicate_label_panics() {
        let mut k = KernelBuilder::new();
        let l = k.fresh_label("l");
        k.place(&l);
        k.place(&l);
    }

    #[test]
    fn register_pool_allocates_and_recycles() {
        let mut k = KernelBuilder::new();
        let a = k.reg("a");
        let b = k.reg("b");
        assert_ne!(a, b);
        assert_eq!(k.reg("a"), a, "same name returns same register");
        assert_eq!(k.regs_in_use(), 2);
        k.release_reg("a");
        assert_eq!(k.regs_in_use(), 1);
        let c = k.reg("c");
        assert_eq!(c, a, "released register is reused");
    }

    #[test]
    #[should_panic(expected = "out of registers")]
    fn register_exhaustion_panics() {
        let mut k = KernelBuilder::new();
        for i in 0..25 {
            let _ = k.reg(&format!("r{i}"));
        }
    }

    #[test]
    fn wram_globals_are_aligned_and_visible() {
        let mut k = KernelBuilder::new();
        let a = k.global_zeroed("a", 3);
        let b = k.global_words("b", &[1, -1]);
        assert_eq!(a, 0);
        assert_eq!(b, 4, "word global must be 4-byte aligned");
        k.stop();
        let p = k.build().unwrap();
        let sym = p.symbol("b").unwrap();
        assert_eq!(sym.addr, 4);
        assert_eq!(sym.size, 8);
        assert_eq!(sym.space, AddressSpace::Wram);
        assert_eq!(&p.wram_init[4..8], &1i32.to_le_bytes());
        assert_eq!(&p.wram_init[8..12], &(-1i32).to_le_bytes());
        assert_eq!(p.heap_base, 16, "heap starts 8-aligned after data");
    }

    #[test]
    fn atomic_bit_exhaustion_detected_at_build() {
        let mut k = KernelBuilder::new();
        for _ in 0..257 {
            k.alloc_atomic_bit();
        }
        k.stop();
        assert!(matches!(k.build(), Err(BuildError::AtomicBitsExhausted)));
    }

    #[test]
    fn tasklet_slot_emits_expected_sequence() {
        let mut k = KernelBuilder::new();
        let r = k.reg("r");
        k.tasklet_slot(r, 100, 8);
        k.stop();
        let p = k.build().unwrap();
        assert_eq!(p.instrs[0], Instruction::Tid { rd: r });
        assert_eq!(
            p.instrs[1],
            Instruction::Alu { op: AluOp::Mul, rd: r, ra: r, rb: Operand::Imm(8) }
        );
        assert_eq!(
            p.instrs[2],
            Instruction::Alu { op: AluOp::Add, rd: r, ra: r, rb: Operand::Imm(100) }
        );
    }

    #[test]
    fn build_surfaces_link_errors() {
        let mut k = KernelBuilder::new();
        let r = k.reg("r");
        k.acquire(300); // invalid immediate bit
        k.movi(r, 0);
        k.stop();
        assert!(matches!(k.build(), Err(BuildError::Link(LinkError::BadAtomicBit { .. }))));
    }
}
