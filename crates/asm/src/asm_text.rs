//! The textual assembler and disassembler.
//!
//! This is the human-facing half of the custom toolchain (the paper's
//! custom lexer/parser/assembler, §III-A): a two-pass assembler that
//! resolves label/symbol def-use relationships and emits a linked
//! [`DpuProgram`].
//!
//! # Syntax
//!
//! ```text
//! ; comments run to end of line (also `#` and `//`)
//! .data
//! params:  .word 0, 0, 0      ; named, initialized words
//! buffer:  .space 256         ; named, zeroed bytes
//!          .align 8
//! .text
//! main:
//!     movi r0, params         ; data symbols resolve to WRAM addresses
//!     lw   r1, 0(r0)
//!     add  r1, r1, 1
//!     bne  r1, 10, main       ; code labels resolve to instruction indices
//!     stop
//! ```

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use pim_isa::{AddressSpace, AluOp, Cond, Instruction, Operand, Reg, Width};

use crate::program::{DpuProgram, LinkOptions, Symbol};

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl Error for AsmError {}

impl From<crate::program::LinkError> for AsmError {
    fn from(e: crate::program::LinkError) -> Self {
        AsmError { line: 0, msg: format!("link error: {e}") }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// One logical source line after stripping comments.
#[derive(Debug)]
struct SrcLine<'a> {
    number: usize,
    label: Option<&'a str>,
    rest: &'a str,
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for (i, _) in line.char_indices() {
        let rest = &line[i..];
        if rest.starts_with(';') || rest.starts_with('#') || rest.starts_with("//") {
            end = i;
            break;
        }
    }
    line[..end].trim()
}

fn split_label(line: &str) -> (Option<&str>, &str) {
    if let Some(colon) = line.find(':') {
        let (head, tail) = line.split_at(colon);
        let head = head.trim();
        if !head.is_empty()
            && head.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            && !head.starts_with('.')
        {
            return (Some(head), tail[1..].trim());
        }
    }
    (None, line)
}

/// Assembles source text with default link options.
///
/// # Errors
///
/// Returns an [`AsmError`] describing the first syntax, symbol, or link
/// problem encountered.
pub fn assemble(src: &str) -> Result<DpuProgram, AsmError> {
    assemble_with(src, &LinkOptions::default())
}

/// Assembles source text with explicit link options.
///
/// # Errors
///
/// Returns an [`AsmError`] describing the first syntax, symbol, or link
/// problem encountered.
pub fn assemble_with(src: &str, opts: &LinkOptions) -> Result<DpuProgram, AsmError> {
    let mut lines = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let stripped = strip_comment(raw);
        if stripped.is_empty() {
            continue;
        }
        let (label, rest) = split_label(stripped);
        lines.push(SrcLine { number: idx + 1, label, rest });
    }

    // ---- Pass 1: assign addresses to labels/symbols ----
    let mut section = Section::Text;
    let mut text_len: u32 = 0;
    let mut data_len: u32 = 0;
    let mut code_labels: BTreeMap<String, u32> = BTreeMap::new();
    let mut data_symbols: BTreeMap<String, Symbol> = BTreeMap::new();
    // Pending label waiting for the next data allocation (to size it).
    for l in &lines {
        let err = |msg: String| AsmError { line: l.number, msg };
        if l.rest == ".text" {
            section = Section::Text;
        } else if l.rest == ".data" {
            section = Section::Data;
        }
        match section {
            Section::Text => {
                if let Some(label) = l.label {
                    if code_labels.insert(label.to_string(), text_len).is_some() {
                        return Err(err(format!("duplicate label `{label}`")));
                    }
                }
                if !l.rest.is_empty() && !l.rest.starts_with('.') {
                    text_len += 1;
                }
            }
            Section::Data => {
                let size = data_directive_size(l, data_len)?;
                if let Some(label) = l.label {
                    let addr = align_for(l.rest, data_len);
                    if data_symbols
                        .insert(label.to_string(), Symbol { addr, size, space: AddressSpace::Wram })
                        .is_some()
                    {
                        return Err(err(format!("duplicate symbol `{label}`")));
                    }
                }
                data_len = align_for(l.rest, data_len) + size;
            }
        }
    }

    // ---- Pass 2: emit ----
    let mut section = Section::Text;
    let mut instrs = Vec::with_capacity(text_len as usize);
    let mut wram = Vec::with_capacity(data_len as usize);
    for l in &lines {
        if l.rest == ".text" {
            section = Section::Text;
            continue;
        }
        if l.rest == ".data" {
            section = Section::Data;
            continue;
        }
        if l.rest.is_empty() {
            continue;
        }
        match section {
            Section::Text => {
                if l.rest.starts_with('.') {
                    return Err(AsmError {
                        line: l.number,
                        msg: format!("directive `{}` not allowed in .text", l.rest),
                    });
                }
                instrs.push(parse_instruction(l, &code_labels, &data_symbols)?);
            }
            Section::Data => emit_data(l, &mut wram)?,
        }
    }

    let heap_base = (opts.wram_base + wram.len() as u32).div_ceil(8) * 8;
    let program = DpuProgram {
        instrs,
        wram_init: wram,
        wram_base: opts.wram_base,
        symbols: data_symbols,
        heap_base,
        atomic_base: 0,
        atomic_bits_used: 0,
    };
    program.validate(opts)?;
    Ok(program)
}

fn align_for(rest: &str, cursor: u32) -> u32 {
    let align = if rest.starts_with(".word") {
        4
    } else if rest.starts_with(".align") {
        rest.split_whitespace()
            .nth(1)
            .and_then(|v| v.parse::<u32>().ok())
            .filter(|a| a.is_power_of_two())
            .unwrap_or(1)
    } else {
        1
    };
    cursor.div_ceil(align) * align
}

fn data_directive_size(l: &SrcLine<'_>, _cursor: u32) -> Result<u32, AsmError> {
    let rest = l.rest;
    let err = |msg: String| AsmError { line: l.number, msg };
    if rest.is_empty() || rest == ".data" {
        return Ok(0);
    }
    if let Some(args) = rest.strip_prefix(".word") {
        let n = args.split(',').filter(|s| !s.trim().is_empty()).count();
        return Ok(n as u32 * 4);
    }
    if let Some(args) = rest.strip_prefix(".byte") {
        let n = args.split(',').filter(|s| !s.trim().is_empty()).count();
        return Ok(n as u32);
    }
    if let Some(arg) = rest.strip_prefix(".space") {
        return arg
            .trim()
            .parse::<u32>()
            .map_err(|_| err(format!("bad .space size `{}`", arg.trim())));
    }
    if rest.starts_with(".align") {
        return Ok(0);
    }
    Err(err(format!("unknown data directive `{rest}`")))
}

fn emit_data(l: &SrcLine<'_>, wram: &mut Vec<u8>) -> Result<(), AsmError> {
    let rest = l.rest;
    let err = |msg: String| AsmError { line: l.number, msg };
    // Apply the same alignment rule pass 1 used.
    let aligned = align_for(rest, wram.len() as u32);
    wram.resize(aligned as usize, 0);
    if rest.is_empty() || rest == ".data" || rest.starts_with(".align") {
        return Ok(());
    }
    if let Some(args) = rest.strip_prefix(".word") {
        for v in args.split(',').filter(|s| !s.trim().is_empty()) {
            let value = parse_int(v.trim())
                .ok_or_else(|| err(format!("bad .word value `{}`", v.trim())))?;
            wram.extend_from_slice(&value.to_le_bytes());
        }
        return Ok(());
    }
    if let Some(args) = rest.strip_prefix(".byte") {
        for v in args.split(',').filter(|s| !s.trim().is_empty()) {
            let value = parse_int(v.trim())
                .ok_or_else(|| err(format!("bad .byte value `{}`", v.trim())))?;
            wram.push(value as u8);
        }
        return Ok(());
    }
    if let Some(arg) = rest.strip_prefix(".space") {
        let n: u32 = arg.trim().parse().map_err(|_| err("bad .space".into()))?;
        wram.resize(wram.len() + n as usize, 0);
        return Ok(());
    }
    Err(err(format!("unknown data directive `{rest}`")))
}

fn parse_int(s: &str) -> Option<i32> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return u32::from_str_radix(hex, 16).ok().map(|v| v as i32);
    }
    if let Some(hex) = s.strip_prefix("-0x") {
        return i64::from_str_radix(hex, 16).ok().map(|v| (-v) as i32);
    }
    s.parse::<i32>().ok()
}

fn parse_reg(s: &str) -> Option<Reg> {
    let idx = s.trim().strip_prefix('r')?.parse::<u8>().ok()?;
    Reg::try_r(idx)
}

/// Resolve a value token: integer literal, data symbol (with optional
/// `+n`/`-n` offset), or nothing.
fn resolve_value(tok: &str, data_symbols: &BTreeMap<String, Symbol>) -> Option<i32> {
    let tok = tok.trim();
    if let Some(v) = parse_int(tok) {
        return Some(v);
    }
    // symbol(+|-)offset
    let (name, offset) = match tok.find(['+', '-']) {
        Some(pos) if pos > 0 => {
            let (n, rest) = tok.split_at(pos);
            (n.trim(), parse_int(rest)?)
        }
        _ => (tok, 0),
    };
    data_symbols.get(name).map(|s| s.addr as i32 + offset)
}

fn parse_operand(tok: &str, data_symbols: &BTreeMap<String, Symbol>) -> Option<Operand> {
    if let Some(r) = parse_reg(tok) {
        return Some(Operand::Reg(r));
    }
    resolve_value(tok, data_symbols).map(Operand::Imm)
}

/// Parse `offset(base)` memory operands; the offset may be a symbol.
fn parse_mem(tok: &str, data_symbols: &BTreeMap<String, Symbol>) -> Option<(i32, Reg)> {
    let tok = tok.trim();
    let open = tok.find('(')?;
    let close = tok.rfind(')')?;
    let off_str = tok[..open].trim();
    let offset = if off_str.is_empty() { 0 } else { resolve_value(off_str, data_symbols)? };
    let base = parse_reg(&tok[open + 1..close])?;
    Some((offset, base))
}

fn parse_target(tok: &str, code_labels: &BTreeMap<String, u32>) -> Option<u32> {
    let tok = tok.trim();
    if let Some(v) = parse_int(tok) {
        return u32::try_from(v).ok();
    }
    code_labels.get(tok).copied()
}

fn parse_instruction(
    l: &SrcLine<'_>,
    code_labels: &BTreeMap<String, u32>,
    data_symbols: &BTreeMap<String, Symbol>,
) -> Result<Instruction, AsmError> {
    let err = |msg: String| AsmError { line: l.number, msg };
    let rest = l.rest;
    let (mnemonic, args_str) = match rest.find(char::is_whitespace) {
        Some(pos) => (&rest[..pos], rest[pos..].trim()),
        None => (rest, ""),
    };
    let args: Vec<&str> =
        if args_str.is_empty() { Vec::new() } else { args_str.split(',').map(str::trim).collect() };
    let nargs = |n: usize| -> Result<(), AsmError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(err(format!("`{mnemonic}` expects {n} operands, got {}", args.len())))
        }
    };
    let reg_at = |i: usize| -> Result<Reg, AsmError> {
        parse_reg(args[i]).ok_or_else(|| err(format!("bad register `{}`", args[i])))
    };
    let operand_at = |i: usize| -> Result<Operand, AsmError> {
        parse_operand(args[i], data_symbols)
            .ok_or_else(|| err(format!("bad operand `{}`", args[i])))
    };
    let value_at = |i: usize| -> Result<i32, AsmError> {
        resolve_value(args[i], data_symbols).ok_or_else(|| err(format!("bad value `{}`", args[i])))
    };
    let mem_at = |i: usize| -> Result<(i32, Reg), AsmError> {
        parse_mem(args[i], data_symbols)
            .ok_or_else(|| err(format!("bad memory operand `{}`", args[i])))
    };
    let target_at = |i: usize| -> Result<u32, AsmError> {
        parse_target(args[i], code_labels)
            .ok_or_else(|| err(format!("unknown label `{}`", args[i])))
    };

    if let Some(op) = AluOp::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
        nargs(3)?;
        return Ok(Instruction::Alu {
            op: *op,
            rd: reg_at(0)?,
            ra: reg_at(1)?,
            rb: operand_at(2)?,
        });
    }
    if let Some(cond) = Cond::ALL.iter().find(|c| c.mnemonic() == mnemonic) {
        nargs(3)?;
        return Ok(Instruction::Branch {
            cond: *cond,
            ra: reg_at(0)?,
            rb: operand_at(1)?,
            target: target_at(2)?,
        });
    }
    let load = |width: Width, signed: bool| -> Result<Instruction, AsmError> {
        nargs(2)?;
        let (offset, base) = mem_at(1)?;
        Ok(Instruction::Load { width, signed, rd: reg_at(0)?, base, offset })
    };
    let store = |width: Width| -> Result<Instruction, AsmError> {
        nargs(2)?;
        let (offset, base) = mem_at(1)?;
        Ok(Instruction::Store { width, rs: reg_at(0)?, base, offset })
    };
    match mnemonic {
        "movi" => {
            nargs(2)?;
            Ok(Instruction::Movi { rd: reg_at(0)?, imm: value_at(1)? })
        }
        "mov" => {
            nargs(2)?;
            Ok(Instruction::Alu {
                op: AluOp::Add,
                rd: reg_at(0)?,
                ra: reg_at(1)?,
                rb: Operand::Imm(0),
            })
        }
        "tid" => {
            nargs(1)?;
            Ok(Instruction::Tid { rd: reg_at(0)? })
        }
        "lw" => load(Width::Word, false),
        "lh" => load(Width::Half, true),
        "lhu" => load(Width::Half, false),
        "lb" => load(Width::Byte, true),
        "lbu" => load(Width::Byte, false),
        "sw" => store(Width::Word),
        "sh" => store(Width::Half),
        "sb" => store(Width::Byte),
        "ldma" => {
            nargs(3)?;
            Ok(Instruction::Ldma { wram: reg_at(0)?, mram: reg_at(1)?, len: operand_at(2)? })
        }
        "sdma" => {
            nargs(3)?;
            Ok(Instruction::Sdma { wram: reg_at(0)?, mram: reg_at(1)?, len: operand_at(2)? })
        }
        "jump" => {
            nargs(1)?;
            Ok(Instruction::Jump { target: target_at(0)? })
        }
        "jal" => {
            nargs(2)?;
            Ok(Instruction::Jal { rd: reg_at(0)?, target: target_at(1)? })
        }
        "jr" => {
            nargs(1)?;
            Ok(Instruction::Jr { ra: reg_at(0)? })
        }
        "acquire" => {
            nargs(1)?;
            Ok(Instruction::Acquire { bit: operand_at(0)? })
        }
        "release" => {
            nargs(1)?;
            Ok(Instruction::Release { bit: operand_at(0)? })
        }
        "stop" => {
            nargs(0)?;
            Ok(Instruction::Stop)
        }
        "nop" => {
            nargs(0)?;
            Ok(Instruction::Nop)
        }
        other => Err(err(format!("unknown mnemonic `{other}`"))),
    }
}

/// Renders a program back to assembly text (numeric branch targets, data as
/// `.byte` runs). `assemble(disassemble(p))` reproduces `p.instrs` exactly.
#[must_use]
pub fn disassemble(p: &DpuProgram) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if !p.wram_init.is_empty() {
        out.push_str(".data\n");
        let _ = writeln!(out, "    .space {}", p.wram_init.len());
    }
    out.push_str(".text\n");
    for (i, instr) in p.instrs.iter().enumerate() {
        let _ = writeln!(out, "    {instr}    ; [{i}]");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_crate_doc_example() {
        let p = assemble(
            r#"
            .data
        counter: .word 0
            .text
        main:
            movi r0, counter
            lw   r1, 0(r0)
            add  r1, r1, 1
            sw   r1, 0(r0)
            stop
        "#,
        )
        .unwrap();
        assert_eq!(p.instrs.len(), 5);
        assert_eq!(p.instrs[0], Instruction::Movi { rd: Reg::r(0), imm: 0 });
    }

    #[test]
    fn forward_and_backward_labels() {
        let p = assemble(
            r#"
            .text
        start:
            movi r0, 3
        loop:
            sub r0, r0, 1
            bne r0, 0, loop
            jump end
            nop
        end:
            stop
        "#,
        )
        .unwrap();
        assert_eq!(
            p.instrs[2],
            Instruction::Branch { cond: Cond::Ne, ra: Reg::r(0), rb: Operand::Imm(0), target: 1 }
        );
        assert_eq!(p.instrs[3], Instruction::Jump { target: 5 });
    }

    #[test]
    fn data_symbols_resolve_with_offsets() {
        let p = assemble(
            r#"
            .data
        a: .word 1, 2, 3
        b: .byte 7
            .text
            movi r0, a+8
            movi r1, b
            lw r2, a(r3)
            stop
        "#,
        )
        .unwrap();
        assert_eq!(p.instrs[0], Instruction::Movi { rd: Reg::r(0), imm: 8 });
        assert_eq!(p.instrs[1], Instruction::Movi { rd: Reg::r(1), imm: 12 });
        assert_eq!(
            p.instrs[2],
            Instruction::Load {
                width: Width::Word,
                signed: false,
                rd: Reg::r(2),
                base: Reg::r(3),
                offset: 0
            }
        );
        assert_eq!(&p.wram_init[0..4], &1i32.to_le_bytes());
        assert_eq!(p.wram_init[12], 7);
    }

    #[test]
    fn alignment_directives() {
        let p = assemble(
            r#"
            .data
        x: .byte 1
            .align 8
        y: .word 5
            .text
            stop
        "#,
        )
        .unwrap();
        assert_eq!(p.symbol("x").unwrap().addr, 0);
        assert_eq!(p.symbol("y").unwrap().addr, 8);
        assert_eq!(&p.wram_init[8..12], &5i32.to_le_bytes());
    }

    #[test]
    fn comments_of_all_styles_ignored() {
        let p = assemble(".text\n nop ; semicolon\n nop # hash\n nop // slashes\n stop\n").unwrap();
        assert_eq!(p.instrs.len(), 4);
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = assemble(".text\n nop\n bogus r0\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("bogus"));
    }

    #[test]
    fn unknown_label_is_an_error() {
        let e = assemble(".text\n jump nowhere\n").unwrap_err();
        assert!(e.msg.contains("nowhere"));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let e = assemble(".text\na:\n nop\na:\n stop\n").unwrap_err();
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = assemble(".text\n movi r0, 0x10\n movi r1, -5\n stop\n").unwrap();
        assert_eq!(p.instrs[0], Instruction::Movi { rd: Reg::r(0), imm: 16 });
        assert_eq!(p.instrs[1], Instruction::Movi { rd: Reg::r(1), imm: -5 });
    }

    #[test]
    fn dma_and_sync_instructions() {
        let p = assemble(
            ".text\n ldma r0, r1, 256\n sdma r2, r3, r4\n acquire 3\n release r5\n stop\n",
        )
        .unwrap();
        assert_eq!(
            p.instrs[0],
            Instruction::Ldma { wram: Reg::r(0), mram: Reg::r(1), len: Operand::Imm(256) }
        );
        assert_eq!(
            p.instrs[1],
            Instruction::Sdma { wram: Reg::r(2), mram: Reg::r(3), len: Operand::Reg(Reg::r(4)) }
        );
    }

    #[test]
    fn disassemble_assemble_round_trip() {
        let src = r#"
            .data
        buf: .space 16
            .text
        main:
            tid r0
            movi r1, buf
            sll r2, r0, 2
            add r1, r1, r2
            lw r3, 0(r1)
            max r3, r3, r0
            sw r3, 0(r1)
            bne r0, 15, main
            stop
        "#;
        let p = assemble(src).unwrap();
        let round = assemble(&disassemble(&p)).unwrap();
        assert_eq!(round.instrs, p.instrs);
    }
}
