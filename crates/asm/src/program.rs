//! The linked program artifact loaded onto a DPU.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use pim_isa::{AddressSpace, Instruction, MemLayout, Operand};

/// A named location in one of the DPU's address spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Symbol {
    /// Byte address within `space` (for IRAM: instruction index × 6).
    pub addr: u32,
    /// Size in bytes.
    pub size: u32,
    /// The address space the symbol lives in.
    pub space: AddressSpace,
}

/// Options controlling the final link step.
///
/// The deliberately relaxable capacity checks are the feature that
/// distinguishes this linker from the stock SDK linker (paper §III-A): the
/// cache-vs-scratchpad case study (§V-D) *requires* linking programs whose
/// WRAM data image exceeds the physical 64 KB scratchpad, which the
/// cache-centric DPU model then backs with DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkOptions {
    /// Memory capacities to check against.
    pub layout: MemLayout,
    /// Permit the WRAM data image to exceed the physical WRAM capacity
    /// (cache-centric mode re-maps it onto DRAM).
    pub allow_wram_overflow: bool,
    /// Base WRAM byte address at which the data image is placed.
    pub wram_base: u32,
}

/// An error detected while finalizing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// The text section exceeds IRAM capacity.
    IramOverflow {
        /// Instructions in the program.
        instrs: usize,
        /// Instructions that fit in IRAM.
        capacity: u32,
    },
    /// The data image exceeds WRAM capacity (and overflow is not allowed).
    WramOverflow {
        /// Bytes in the data image.
        bytes: u32,
        /// WRAM capacity in bytes.
        capacity: u32,
    },
    /// A control-transfer target lies outside the program.
    BadTarget {
        /// Index of the offending instruction.
        at: usize,
        /// The out-of-range target.
        target: u32,
    },
    /// An atomic-bit operand is out of range.
    BadAtomicBit {
        /// Index of the offending instruction.
        at: usize,
        /// The out-of-range bit index.
        bit: i32,
    },
    /// A branch immediate comparison operand does not fit the encoding.
    BranchImmOverflow {
        /// Index of the offending instruction.
        at: usize,
        /// The immediate that does not fit `i16`.
        imm: i32,
    },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::IramOverflow { instrs, capacity } => write!(
                f,
                "text section of {instrs} instructions exceeds IRAM capacity of {capacity}"
            ),
            LinkError::WramOverflow { bytes, capacity } => {
                write!(f, "data image of {bytes} bytes exceeds WRAM capacity of {capacity} bytes")
            }
            LinkError::BadTarget { at, target } => {
                write!(f, "instruction {at}: branch target {target} out of range")
            }
            LinkError::BadAtomicBit { at, bit } => {
                write!(f, "instruction {at}: atomic bit {bit} out of range")
            }
            LinkError::BranchImmOverflow { at, imm } => {
                write!(f, "instruction {at}: branch immediate {imm} does not fit i16")
            }
        }
    }
}

impl Error for LinkError {}

/// A linked DPU program: the IRAM instruction stream, the initial WRAM data
/// image, and the symbol table the host uses to address named buffers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DpuProgram {
    /// The instruction stream, loaded at IRAM index 0; execution of every
    /// tasklet begins at index 0.
    pub instrs: Vec<Instruction>,
    /// Initial WRAM contents, loaded at [`LinkOptions::wram_base`].
    pub wram_init: Vec<u8>,
    /// Base WRAM address of `wram_init`.
    pub wram_base: u32,
    /// Named locations (host-visible variables, buffers).
    pub symbols: BTreeMap<String, Symbol>,
    /// First WRAM byte past the static data: base of the runtime heap
    /// (the `mem_alloc` region of the SDK).
    pub heap_base: u32,
    /// First atomic-bit index the program allocates from (0 unless built
    /// with [`crate::KernelBuilder::with_partition`]).
    pub atomic_base: u32,
    /// Number of atomic bits the program allocated (0 for hand-assembled
    /// programs, which use explicit immediates).
    pub atomic_bits_used: u32,
}

impl DpuProgram {
    /// Looks up a symbol by name.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.get(name)
    }

    /// IRAM footprint in bytes (6 architectural bytes per instruction).
    #[must_use]
    pub fn iram_bytes(&self) -> u32 {
        self.instrs.len() as u32 * pim_isa::layout::IRAM_INSTR_BYTES
    }

    /// WRAM footprint in bytes (static data only; the heap grows past it).
    #[must_use]
    pub fn wram_bytes(&self) -> u32 {
        self.wram_base + self.wram_init.len() as u32
    }

    /// Validates the program against the capacities and encoding limits in
    /// `opts`. Run by [`crate::KernelBuilder::build`] and [`crate::assemble`];
    /// call directly when constructing programs by hand.
    ///
    /// # Errors
    ///
    /// Returns the first [`LinkError`] found.
    pub fn validate(&self, opts: &LinkOptions) -> Result<(), LinkError> {
        let cap = opts.layout.iram_instrs();
        if self.instrs.len() as u32 > cap {
            return Err(LinkError::IramOverflow { instrs: self.instrs.len(), capacity: cap });
        }
        if !opts.allow_wram_overflow && self.wram_bytes() > opts.layout.wram_bytes {
            return Err(LinkError::WramOverflow {
                bytes: self.wram_bytes(),
                capacity: opts.layout.wram_bytes,
            });
        }
        let n = self.instrs.len() as u32;
        for (at, i) in self.instrs.iter().enumerate() {
            match *i {
                Instruction::Branch { rb, target, .. } => {
                    if target >= n {
                        return Err(LinkError::BadTarget { at, target });
                    }
                    if let Operand::Imm(imm) = rb {
                        if i16::try_from(imm).is_err() {
                            return Err(LinkError::BranchImmOverflow { at, imm });
                        }
                    }
                }
                Instruction::Jump { target } | Instruction::Jal { target, .. } if target >= n => {
                    return Err(LinkError::BadTarget { at, target });
                }
                Instruction::Acquire { bit: Operand::Imm(b) }
                | Instruction::Release { bit: Operand::Imm(b) }
                    if !(0..i64::from(opts.layout.atomic_bits)).contains(&i64::from(b)) =>
                {
                    return Err(LinkError::BadAtomicBit { at, bit: b });
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Encodes the instruction stream into binary IRAM words.
    #[must_use]
    pub fn encode_text(&self) -> Vec<u64> {
        self.instrs.iter().map(Instruction::encode).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_isa::{Cond, Reg};

    fn program_with(instrs: Vec<Instruction>) -> DpuProgram {
        DpuProgram { instrs, ..DpuProgram::default() }
    }

    #[test]
    fn validate_accepts_simple_program() {
        let p = program_with(vec![Instruction::Movi { rd: Reg::r(0), imm: 3 }, Instruction::Stop]);
        assert!(p.validate(&LinkOptions::default()).is_ok());
    }

    #[test]
    fn validate_rejects_iram_overflow() {
        let p = program_with(vec![Instruction::Nop; 4097]);
        match p.validate(&LinkOptions::default()) {
            Err(LinkError::IramOverflow { instrs: 4097, capacity: 4096 }) => {}
            other => panic!("expected IRAM overflow, got {other:?}"),
        }
    }

    #[test]
    fn validate_rejects_wram_overflow_unless_allowed() {
        let p = DpuProgram {
            instrs: vec![Instruction::Stop],
            wram_init: vec![0; 65 * 1024],
            ..DpuProgram::default()
        };
        assert!(matches!(p.validate(&LinkOptions::default()), Err(LinkError::WramOverflow { .. })));
        let relaxed = LinkOptions { allow_wram_overflow: true, ..LinkOptions::default() };
        assert!(p.validate(&relaxed).is_ok());
    }

    #[test]
    fn validate_rejects_out_of_range_target() {
        let p = program_with(vec![Instruction::Jump { target: 5 }]);
        assert!(matches!(
            p.validate(&LinkOptions::default()),
            Err(LinkError::BadTarget { at: 0, target: 5 })
        ));
    }

    #[test]
    fn validate_rejects_wide_branch_imm() {
        let p = program_with(vec![
            Instruction::Branch {
                cond: Cond::Eq,
                ra: Reg::r(0),
                rb: Operand::Imm(100_000),
                target: 0,
            },
            Instruction::Stop,
        ]);
        assert!(matches!(
            p.validate(&LinkOptions::default()),
            Err(LinkError::BranchImmOverflow { at: 0, imm: 100_000 })
        ));
    }

    #[test]
    fn validate_rejects_bad_atomic_bit() {
        let p =
            program_with(vec![Instruction::Acquire { bit: Operand::Imm(300) }, Instruction::Stop]);
        assert!(matches!(
            p.validate(&LinkOptions::default()),
            Err(LinkError::BadAtomicBit { at: 0, bit: 300 })
        ));
    }

    #[test]
    fn footprints() {
        let p = DpuProgram {
            instrs: vec![Instruction::Nop; 10],
            wram_init: vec![0; 100],
            wram_base: 8,
            ..DpuProgram::default()
        };
        assert_eq!(p.iram_bytes(), 60);
        assert_eq!(p.wram_bytes(), 108);
        assert_eq!(p.encode_text().len(), 10);
    }
}
