//! Property test: programs survive a disassemble → assemble round trip.

use pim_asm::{assemble, disassemble, DpuProgram};
use pim_isa::{AluOp, Cond, Instruction, Operand, Reg, Width};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..24).prop_map(Reg::r)
}

/// Instructions whose textual form is canonical (everything the builder
/// emits). Branch targets are patched to stay in range afterwards.
fn arb_instruction() -> impl Strategy<Value = Instruction> {
    let alu = (
        prop::sample::select(AluOp::ALL.to_vec()),
        arb_reg(),
        arb_reg(),
        prop_oneof![
            arb_reg().prop_map(Operand::Reg),
            (-100_000i32..100_000).prop_map(Operand::Imm)
        ],
    )
        .prop_map(|(op, rd, ra, rb)| Instruction::Alu { op, rd, ra, rb });
    let movi = (arb_reg(), any::<i32>()).prop_map(|(rd, imm)| Instruction::Movi { rd, imm });
    let load = (
        prop_oneof![
            any::<bool>().prop_map(|s| (Width::Byte, s)),
            any::<bool>().prop_map(|s| (Width::Half, s)),
            Just((Width::Word, false)),
        ],
        arb_reg(),
        arb_reg(),
        -4096i32..4096,
    )
        .prop_map(|((width, signed), rd, base, offset)| Instruction::Load {
            width,
            signed,
            rd,
            base,
            offset,
        });
    let store = (
        prop::sample::select(vec![Width::Byte, Width::Half, Width::Word]),
        arb_reg(),
        arb_reg(),
        -4096i32..4096,
    )
        .prop_map(|(width, rs, base, offset)| Instruction::Store { width, rs, base, offset });
    let dma = (arb_reg(), arb_reg(), prop_oneof![
        arb_reg().prop_map(Operand::Reg),
        (4i32..4096).prop_map(Operand::Imm)
    ], any::<bool>())
        .prop_map(|(wram, mram, len, write)| {
            if write {
                Instruction::Sdma { wram, mram, len }
            } else {
                Instruction::Ldma { wram, mram, len }
            }
        });
    let branch = (
        prop::sample::select(Cond::ALL.to_vec()),
        arb_reg(),
        prop_oneof![
            arb_reg().prop_map(Operand::Reg),
            (-30_000i32..30_000).prop_map(Operand::Imm)
        ],
    )
        .prop_map(|(cond, ra, rb)| Instruction::Branch { cond, ra, rb, target: 0 });
    let sync = (0i32..256, any::<bool>()).prop_map(|(bit, acq)| {
        if acq {
            Instruction::Acquire { bit: Operand::Imm(bit) }
        } else {
            Instruction::Release { bit: Operand::Imm(bit) }
        }
    });
    prop_oneof![
        alu,
        movi,
        load,
        store,
        dma,
        branch,
        sync,
        arb_reg().prop_map(|rd| Instruction::Tid { rd }),
        arb_reg().prop_map(|ra| Instruction::Jr { ra }),
        Just(Instruction::Nop),
        Just(Instruction::Stop),
    ]
}

proptest! {
    #[test]
    fn disassemble_assemble_round_trip(
        mut instrs in prop::collection::vec(arb_instruction(), 1..200),
        targets in prop::collection::vec(0usize..200, 0..40),
    ) {
        // Patch branch targets into range.
        let n = instrs.len() as u32;
        let mut ti = targets.iter();
        for i in &mut instrs {
            if let Instruction::Branch { target, .. } = i {
                *target = ti.next().map_or(0, |t| (*t as u32) % n);
            }
        }
        let program = DpuProgram { instrs: instrs.clone(), ..DpuProgram::default() };
        let text = disassemble(&program);
        let back = assemble(&text).expect("disassembly must re-assemble");
        prop_assert_eq!(back.instrs, instrs);
    }
}
