//! Randomized property test (seeded, dependency-free): programs survive a
//! disassemble → assemble round trip.

use pim_asm::{assemble, disassemble, DpuProgram};
use pim_isa::{AluOp, Cond, Instruction, Operand, Reg, Width};
use pim_rng::StdRng;

fn arb_reg(rng: &mut StdRng) -> Reg {
    Reg::r(rng.gen_range(0u8..24))
}

/// Instructions whose textual form is canonical (everything the builder
/// emits). Branch targets are patched to stay in range afterwards.
fn arb_instruction(rng: &mut StdRng) -> Instruction {
    match rng.gen_range(0u8..11) {
        0 => Instruction::Alu {
            op: *rng.choose(&AluOp::ALL),
            rd: arb_reg(rng),
            ra: arb_reg(rng),
            rb: if rng.gen_bool() {
                Operand::Reg(arb_reg(rng))
            } else {
                Operand::Imm(rng.gen_range(-100_000i32..100_000))
            },
        },
        1 => Instruction::Movi { rd: arb_reg(rng), imm: rng.next_u32() as i32 },
        2 => {
            let (width, signed) = match rng.gen_range(0u8..3) {
                0 => (Width::Byte, rng.gen_bool()),
                1 => (Width::Half, rng.gen_bool()),
                _ => (Width::Word, false),
            };
            Instruction::Load {
                width,
                signed,
                rd: arb_reg(rng),
                base: arb_reg(rng),
                offset: rng.gen_range(-4096i32..4096),
            }
        }
        3 => Instruction::Store {
            width: *rng.choose(&[Width::Byte, Width::Half, Width::Word]),
            rs: arb_reg(rng),
            base: arb_reg(rng),
            offset: rng.gen_range(-4096i32..4096),
        },
        4 => {
            let wram = arb_reg(rng);
            let mram = arb_reg(rng);
            let len = if rng.gen_bool() {
                Operand::Reg(arb_reg(rng))
            } else {
                Operand::Imm(rng.gen_range(4i32..4096))
            };
            if rng.gen_bool() {
                Instruction::Sdma { wram, mram, len }
            } else {
                Instruction::Ldma { wram, mram, len }
            }
        }
        5 => Instruction::Branch {
            cond: *rng.choose(&Cond::ALL),
            ra: arb_reg(rng),
            rb: if rng.gen_bool() {
                Operand::Reg(arb_reg(rng))
            } else {
                Operand::Imm(rng.gen_range(-30_000i32..30_000))
            },
            target: 0,
        },
        6 => {
            let bit = Operand::Imm(rng.gen_range(0i32..256));
            if rng.gen_bool() {
                Instruction::Acquire { bit }
            } else {
                Instruction::Release { bit }
            }
        }
        7 => Instruction::Tid { rd: arb_reg(rng) },
        8 => Instruction::Jr { ra: arb_reg(rng) },
        9 => Instruction::Nop,
        _ => Instruction::Stop,
    }
}

#[test]
fn disassemble_assemble_round_trip() {
    let mut rng = StdRng::seed_from_u64(0xA5C3_7E47);
    for _case in 0..256 {
        let len = rng.gen_range(1usize..200);
        let mut instrs: Vec<Instruction> = (0..len).map(|_| arb_instruction(&mut rng)).collect();
        // Patch branch targets into range.
        let n = instrs.len() as u32;
        for i in &mut instrs {
            if let Instruction::Branch { target, .. } = i {
                *target = rng.gen_range(0u32..200) % n;
            }
        }
        let program = DpuProgram { instrs: instrs.clone(), ..DpuProgram::default() };
        let text = disassemble(&program);
        let back = assemble(&text).expect("disassembly must re-assemble");
        assert_eq!(back.instrs, instrs);
    }
}
