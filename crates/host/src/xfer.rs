//! The CPU↔DPU transfer bandwidth model.

/// Fixed-bandwidth, per-direction transfer model (paper Table I).
///
/// The asymmetry is real and load-bearing: the paper observes that UPMEM
/// implements CPU→DPU with asynchronous AVX writes but CPU←DPU with
/// synchronous AVX reads, making read-back ~4.7× slower per byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferConfig {
    /// CPU→DPU bandwidth in GB/s per DPU (Table I: 0.296).
    pub to_dpu_gbps: f64,
    /// CPU←DPU bandwidth in GB/s per DPU (Table I: 0.063).
    pub from_dpu_gbps: f64,
}

impl TransferConfig {
    /// The paper's measured constants.
    #[must_use]
    pub fn paper() -> Self {
        TransferConfig { to_dpu_gbps: 0.296, from_dpu_gbps: 0.063 }
    }

    /// Nanoseconds to move `bytes` to one DPU (1 GB/s ≡ 1 byte/ns).
    #[must_use]
    pub fn to_dpu_ns(&self, bytes: u64) -> f64 {
        bytes as f64 / self.to_dpu_gbps
    }

    /// Nanoseconds to move `bytes` back from one DPU.
    #[must_use]
    pub fn from_dpu_ns(&self, bytes: u64) -> f64 {
        bytes as f64 / self.from_dpu_gbps
    }
}

impl Default for TransferConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let t = TransferConfig::paper();
        assert!((t.to_dpu_gbps - 0.296).abs() < 1e-12);
        assert!((t.from_dpu_gbps - 0.063).abs() < 1e-12);
    }

    #[test]
    fn asymmetry_read_back_slower() {
        let t = TransferConfig::paper();
        assert!(t.from_dpu_ns(1024) > 4.0 * t.to_dpu_ns(1024));
    }

    #[test]
    fn time_scales_linearly_with_bytes() {
        let t = TransferConfig::paper();
        assert!((t.to_dpu_ns(2048) - 2.0 * t.to_dpu_ns(1024)).abs() < 1e-9);
        // 296 MB at 0.296 GB/s = 1 s.
        assert!((t.to_dpu_ns(296_000_000) - 1e9).abs() < 1.0);
    }
}
