//! The CPU↔DPU channel model.
//!
//! Two layers live here:
//!
//! 1. [`TransferConfig`] — the paper's §III-A fixed-bandwidth,
//!    per-direction pipe (Table I constants), unchanged since v1. Every
//!    transfer blocks the host and the set behaves as one flat channel.
//! 2. The **channel model v2**: [`ChannelConfig`] selects a
//!    [`ChannelMode`] on top of the same bandwidth constants, and
//!    [`Channel`] is the virtual-time engine that prices each operation.
//!    The modes ladder the software transfer tricks of the pathfinding
//!    literature ("UPMEM Unleashed", arXiv:2510.15927):
//!
//!    * [`ChannelMode::Blocking`] — the legacy v1 pipe, byte-for-byte.
//!    * [`ChannelMode::Broadcast`] — per-rank parallel channels, and a
//!      payload written once serves every DPU of a rank: a broadcast of
//!      `B` bytes costs `B / (rank_dpus × bw)` per rank instead of
//!      `B / bw`. Host semantics stay blocking.
//!    * [`ChannelMode::Overlapped`] — broadcast pricing **plus**
//!      asynchronous pushes: CPU→DPU transfers are issued against the
//!      per-rank channel timelines and overlap kernel execution (the
//!      restructured, double-buffered host program), with a completion
//!      barrier at every pull boundary. Pulls stay synchronous — the
//!      paper observes CPU←DPU uses synchronous AVX reads, so read-back
//!      can never be hidden.
//!
//! The duration *sums* accumulated into
//! [`crate::ExecutionTimeline`]'s phase fields keep their v1 meaning in
//! every mode; overlap shows up only in the separately tracked wall
//! clock ([`Channel::wall_ns`] / `ExecutionTimeline::wall_ns`).

use std::fmt;

/// Default DPUs per rank: UPMEM DIMMs carry 8 chips × 8 DPUs per rank.
pub const DEFAULT_RANK_DPUS: u32 = 64;

/// A typed rejection of an invalid channel configuration — hand-edited
/// configs must fail loudly at construction, not poison every later
/// latency with NaN/∞.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelError {
    /// A per-direction bandwidth was NaN, infinite, zero, or negative.
    BadBandwidth {
        /// Which direction was rejected (`"to_dpu"` / `"from_dpu"`).
        direction: &'static str,
        /// The offending value, GB/s.
        gbps: f64,
    },
    /// `rank_dpus` was zero — a rank must hold at least one DPU.
    EmptyRank,
    /// A channel-mode name that is not `blocking`/`broadcast`/`overlapped`.
    UnknownMode(String),
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::BadBandwidth { direction, gbps } => {
                write!(f, "invalid {direction} bandwidth {gbps} GB/s (must be finite and > 0)")
            }
            ChannelError::EmptyRank => write!(f, "rank_dpus must be at least 1"),
            ChannelError::UnknownMode(name) => {
                write!(f, "unknown channel mode '{name}' (expected blocking|broadcast|overlapped)")
            }
        }
    }
}

impl std::error::Error for ChannelError {}

/// Fixed-bandwidth, per-direction transfer model (paper Table I).
///
/// The asymmetry is real and load-bearing: the paper observes that UPMEM
/// implements CPU→DPU with asynchronous AVX writes but CPU←DPU with
/// synchronous AVX reads, making read-back ~4.7× slower per byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferConfig {
    /// CPU→DPU bandwidth in GB/s per DPU (Table I: 0.296).
    pub to_dpu_gbps: f64,
    /// CPU←DPU bandwidth in GB/s per DPU (Table I: 0.063).
    pub from_dpu_gbps: f64,
}

impl TransferConfig {
    /// The paper's measured constants.
    #[must_use]
    pub fn paper() -> Self {
        TransferConfig { to_dpu_gbps: 0.296, from_dpu_gbps: 0.063 }
    }

    /// Validated constructor: rejects non-finite, zero, or negative
    /// bandwidths with a typed [`ChannelError`] instead of silently
    /// producing NaN/∞ latencies downstream. `bytes = 0` transfers remain
    /// valid (they cost 0 ns); the *bandwidths* are what a hand-edited
    /// config can get wrong.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::BadBandwidth`] naming the offending
    /// direction.
    pub fn try_new(to_dpu_gbps: f64, from_dpu_gbps: f64) -> Result<Self, ChannelError> {
        let cfg = TransferConfig { to_dpu_gbps, from_dpu_gbps };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Re-checks the bandwidth invariants of [`TransferConfig::try_new`]
    /// (the fields are public for struct-update ergonomics, so a config
    /// can be corrupted after construction).
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::BadBandwidth`] naming the offending
    /// direction.
    pub fn validate(&self) -> Result<(), ChannelError> {
        for (direction, gbps) in [("to_dpu", self.to_dpu_gbps), ("from_dpu", self.from_dpu_gbps)] {
            if !gbps.is_finite() || gbps <= 0.0 {
                return Err(ChannelError::BadBandwidth { direction, gbps });
            }
        }
        Ok(())
    }

    /// Nanoseconds to move `bytes` to one DPU (1 GB/s ≡ 1 byte/ns).
    /// `bytes = 0` is a valid no-op transfer costing 0 ns.
    #[must_use]
    pub fn to_dpu_ns(&self, bytes: u64) -> f64 {
        bytes as f64 / self.to_dpu_gbps
    }

    /// Nanoseconds to move `bytes` back from one DPU.
    /// `bytes = 0` is a valid no-op transfer costing 0 ns.
    #[must_use]
    pub fn from_dpu_ns(&self, bytes: u64) -> f64 {
        bytes as f64 / self.from_dpu_gbps
    }
}

impl Default for TransferConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// How the channel prices and schedules transfers (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChannelMode {
    /// The legacy v1 pipe: every transfer blocks the host at per-DPU
    /// bandwidth. Reproduces pre-v2 numbers byte-for-byte.
    #[default]
    Blocking,
    /// Rank-parallel channels with broadcast dedup; blocking host.
    Broadcast,
    /// Broadcast pricing plus asynchronous CPU→DPU pushes that overlap
    /// kernel execution, barriered at pulls.
    Overlapped,
}

impl ChannelMode {
    /// Stable lowercase label used in flags, reports, and JSON rows.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ChannelMode::Blocking => "blocking",
            ChannelMode::Broadcast => "broadcast",
            ChannelMode::Overlapped => "overlapped",
        }
    }

    /// All modes, in sweep order.
    #[must_use]
    pub fn all() -> [ChannelMode; 3] {
        [ChannelMode::Blocking, ChannelMode::Broadcast, ChannelMode::Overlapped]
    }

    /// Parses a mode label (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::UnknownMode`] for anything but
    /// `blocking`/`broadcast`/`overlapped`.
    pub fn by_name(name: &str) -> Result<Self, ChannelError> {
        ChannelMode::all()
            .into_iter()
            .find(|m| m.label().eq_ignore_ascii_case(name))
            .ok_or_else(|| ChannelError::UnknownMode(name.to_string()))
    }
}

impl fmt::Display for ChannelMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The full channel model: bandwidth constants, scheduling mode, and the
/// rank geometry the v2 modes exploit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelConfig {
    /// Per-direction bandwidth constants (Table I).
    pub xfer: TransferConfig,
    /// Transfer scheduling mode.
    pub mode: ChannelMode,
    /// DPUs per rank (per-rank channels move in parallel in the v2
    /// modes). Must be at least 1.
    pub rank_dpus: u32,
}

impl ChannelConfig {
    /// The legacy blocking pipe with the paper's constants — the default
    /// everywhere, and the mode every golden snapshot is pinned to.
    #[must_use]
    pub fn blocking() -> Self {
        ChannelConfig {
            xfer: TransferConfig::paper(),
            mode: ChannelMode::Blocking,
            rank_dpus: DEFAULT_RANK_DPUS,
        }
    }

    /// Paper constants, [`ChannelMode::Broadcast`].
    #[must_use]
    pub fn broadcast() -> Self {
        ChannelConfig { mode: ChannelMode::Broadcast, ..Self::blocking() }
    }

    /// Paper constants, [`ChannelMode::Overlapped`].
    #[must_use]
    pub fn overlapped() -> Self {
        ChannelConfig { mode: ChannelMode::Overlapped, ..Self::blocking() }
    }

    /// Alias for [`ChannelConfig::blocking`] (the paper measures the
    /// blocking SDK path).
    #[must_use]
    pub fn paper() -> Self {
        Self::blocking()
    }

    /// Paper constants with the given mode.
    #[must_use]
    pub fn with_mode(mode: ChannelMode) -> Self {
        ChannelConfig { mode, ..Self::blocking() }
    }

    /// Validated constructor for hand-assembled configs.
    ///
    /// # Errors
    ///
    /// Returns the [`ChannelError`] of the first violated invariant.
    pub fn try_new(
        xfer: TransferConfig,
        mode: ChannelMode,
        rank_dpus: u32,
    ) -> Result<Self, ChannelError> {
        xfer.validate()?;
        if rank_dpus == 0 {
            return Err(ChannelError::EmptyRank);
        }
        Ok(ChannelConfig { xfer, mode, rank_dpus })
    }
}

impl Default for ChannelConfig {
    fn default() -> Self {
        Self::blocking()
    }
}

impl From<TransferConfig> for ChannelConfig {
    /// A bare [`TransferConfig`] means the legacy blocking pipe — every
    /// pre-v2 call site keeps its exact semantics.
    fn from(xfer: TransferConfig) -> Self {
        ChannelConfig { xfer, ..Self::blocking() }
    }
}

/// The virtual-time channel engine: prices each transfer under the
/// configured [`ChannelMode`] and tracks the host clock plus one busy-until
/// mark per rank so overlapped pushes queue on their rank's channel.
///
/// All times are nanoseconds on the simulated clock. The engine is the
/// single source of truth for transfer pricing: [`crate::PimSystem`]
/// drives it from the transfer API, and the differential test suite
/// drives it directly with seeded shapes.
#[derive(Debug, Clone)]
pub struct Channel {
    cfg: ChannelConfig,
    n_dpus: u32,
    /// The host's clock: advanced by kernels and every blocking transfer.
    host_ns: f64,
    /// Per-rank channel busy-until marks (≥ `host_ns` only while an
    /// overlapped push is still in flight).
    rank_free_ns: Vec<f64>,
}

impl Channel {
    /// A fresh channel for `n_dpus` DPUs at time 0.
    ///
    /// # Panics
    ///
    /// Panics if `n_dpus` or `cfg.rank_dpus` is zero (the config-level
    /// invariant is enforced by [`ChannelConfig::try_new`]; this is the
    /// last line of defence for struct-literal configs).
    #[must_use]
    pub fn new(cfg: ChannelConfig, n_dpus: u32) -> Self {
        assert!(n_dpus > 0, "a channel serves at least one DPU");
        assert!(cfg.rank_dpus > 0, "rank_dpus must be at least 1");
        let ranks = n_dpus.div_ceil(cfg.rank_dpus) as usize;
        Channel { cfg, n_dpus, host_ns: 0.0, rank_free_ns: vec![0.0; ranks] }
    }

    /// The configuration the channel was built with.
    #[must_use]
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// The scheduling mode.
    #[must_use]
    pub fn mode(&self) -> ChannelMode {
        self.cfg.mode
    }

    /// The host clock (excludes in-flight overlapped pushes).
    #[must_use]
    pub fn host_ns(&self) -> f64 {
        self.host_ns
    }

    /// The wall clock: host time joined with every in-flight transfer —
    /// the moment the whole system (host *and* channel) goes quiet.
    #[must_use]
    pub fn wall_ns(&self) -> f64 {
        self.rank_free_ns.iter().fold(self.host_ns, |a, &b| a.max(b))
    }

    /// Rewinds the channel to time 0 (e.g. between experiments).
    pub fn reset(&mut self) {
        self.host_ns = 0.0;
        self.rank_free_ns.fill(0.0);
    }

    /// DPUs populating rank `r` (the last rank may be partial).
    fn rank_population(&self, r: usize) -> f64 {
        let lo = r as u32 * self.cfg.rank_dpus;
        f64::from(self.n_dpus.min(lo + self.cfg.rank_dpus) - lo)
    }

    /// A blocking operation of `ns` on host and channel together.
    fn advance_sync(&mut self, ns: f64) {
        self.host_ns += ns;
        self.rank_free_ns.fill(self.host_ns);
    }

    /// Prices a CPU→DPU push of per-DPU payload sizes `bytes_per_dpu`
    /// (index = DPU; 0 for uninvolved DPUs) and advances virtual time.
    /// Returns the operation's channel time — the duration charged to the
    /// timeline's `to_dpu_ns` phase sum.
    ///
    /// Pricing: the slowest per-DPU chunk gates the push in every mode
    /// (per-DPU links move in parallel, exactly the v1 rule). In
    /// [`ChannelMode::Overlapped`] the push is issued asynchronously:
    /// each rank's channel is busy from `max(host, rank_free)` for its
    /// own largest chunk, and the host does not wait.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `bytes_per_dpu` is not one entry per DPU.
    pub fn push(&mut self, bytes_per_dpu: &[u64]) -> f64 {
        debug_assert_eq!(bytes_per_dpu.len(), self.n_dpus as usize, "one payload size per DPU");
        let max = bytes_per_dpu.iter().copied().max().unwrap_or(0);
        let ns = self.cfg.xfer.to_dpu_ns(max);
        match self.cfg.mode {
            ChannelMode::Blocking => self.host_ns += ns,
            ChannelMode::Broadcast => self.advance_sync(ns),
            ChannelMode::Overlapped => {
                for (r, chunk) in bytes_per_dpu.chunks(self.cfg.rank_dpus as usize).enumerate() {
                    let rank_max = chunk.iter().copied().max().unwrap_or(0);
                    if rank_max == 0 {
                        continue;
                    }
                    let start = self.rank_free_ns[r].max(self.host_ns);
                    self.rank_free_ns[r] = start + self.cfg.xfer.to_dpu_ns(rank_max);
                }
            }
        }
        ns
    }

    /// Prices a CPU→DPU push of `bytes` to a single DPU.
    pub fn push_one(&mut self, dpu: u32, bytes: u64) -> f64 {
        let ns = self.cfg.xfer.to_dpu_ns(bytes);
        match self.cfg.mode {
            ChannelMode::Blocking => self.host_ns += ns,
            ChannelMode::Broadcast => self.advance_sync(ns),
            ChannelMode::Overlapped => {
                if bytes > 0 {
                    let r = (dpu / self.cfg.rank_dpus) as usize;
                    let start = self.rank_free_ns[r].max(self.host_ns);
                    self.rank_free_ns[r] = start + ns;
                }
            }
        }
        ns
    }

    /// Prices a broadcast of `bytes` — one payload serving every DPU.
    ///
    /// In the v2 modes the payload is written **once** per rank and the
    /// rank's aggregate link (`rank_dpus × bw`) carries it, so the cost
    /// per rank is `bytes / (population × bw)`; the smallest (possibly
    /// partial, and therefore slowest) rank gates the operation, and
    /// ranks move in parallel. [`ChannelMode::Blocking`] keeps the v1
    /// price of one per-DPU write (`bytes / bw`), which is what the SDK's
    /// sequential broadcast costs under per-DPU-parallel links.
    pub fn broadcast(&mut self, bytes: u64) -> f64 {
        match self.cfg.mode {
            ChannelMode::Blocking => {
                let ns = self.cfg.xfer.to_dpu_ns(bytes);
                self.host_ns += ns;
                ns
            }
            ChannelMode::Broadcast | ChannelMode::Overlapped => {
                let ranks = self.rank_free_ns.len();
                let mut worst = 0.0f64;
                for r in 0..ranks {
                    worst = worst.max(self.cfg.xfer.to_dpu_ns(bytes) / self.rank_population(r));
                }
                if self.cfg.mode == ChannelMode::Broadcast {
                    self.advance_sync(worst);
                } else if bytes > 0 {
                    for r in 0..ranks {
                        let t = self.cfg.xfer.to_dpu_ns(bytes) / self.rank_population(r);
                        let start = self.rank_free_ns[r].max(self.host_ns);
                        self.rank_free_ns[r] = start + t;
                    }
                }
                worst
            }
        }
    }

    /// Advances the host clock by one kernel launch of `ns`. Kernels
    /// always block the host; in [`ChannelMode::Overlapped`] in-flight
    /// pushes keep streaming underneath (the double-buffered host
    /// program staged the *next* launch's data).
    pub fn kernel(&mut self, ns: f64) {
        self.host_ns += ns;
        if self.cfg.mode != ChannelMode::Overlapped {
            self.rank_free_ns.fill(self.host_ns);
        }
    }

    /// Prices a CPU←DPU pull whose largest per-DPU chunk is `max_bytes`.
    ///
    /// Read-back is synchronous in every mode (the paper: CPU←DPU uses
    /// synchronous AVX reads), and per-DPU links already move in
    /// parallel, so the price is the v1 `max_bytes / from_bw` everywhere
    /// — the read-back asymmetry is preserved in every mode. In
    /// [`ChannelMode::Overlapped`] the pull is a completion barrier: the
    /// host first waits out every in-flight push.
    pub fn pull(&mut self, max_bytes: u64) -> f64 {
        if self.cfg.mode == ChannelMode::Overlapped {
            self.host_ns = self.wall_ns();
        }
        let ns = self.cfg.xfer.from_dpu_ns(max_bytes);
        self.advance_sync(ns);
        ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let t = TransferConfig::paper();
        assert!((t.to_dpu_gbps - 0.296).abs() < 1e-12);
        assert!((t.from_dpu_gbps - 0.063).abs() < 1e-12);
    }

    #[test]
    fn asymmetry_read_back_slower() {
        let t = TransferConfig::paper();
        assert!(t.from_dpu_ns(1024) > 4.0 * t.to_dpu_ns(1024));
    }

    #[test]
    fn time_scales_linearly_with_bytes() {
        let t = TransferConfig::paper();
        assert!((t.to_dpu_ns(2048) - 2.0 * t.to_dpu_ns(1024)).abs() < 1e-9);
        // 296 MB at 0.296 GB/s = 1 s.
        assert!((t.to_dpu_ns(296_000_000) - 1e9).abs() < 1.0);
    }

    #[test]
    fn try_new_rejects_bad_bandwidths_and_keeps_zero_bytes_valid() {
        assert!(TransferConfig::try_new(0.296, 0.063).is_ok());
        for (to, from) in [(0.0, 0.063), (0.296, 0.0), (-1.0, 0.063), (f64::NAN, 0.063)] {
            let err = TransferConfig::try_new(to, from).unwrap_err();
            assert!(matches!(err, ChannelError::BadBandwidth { .. }), "{to}/{from}: {err}");
        }
        let err = TransferConfig::try_new(0.296, f64::INFINITY).unwrap_err();
        assert_eq!(err, ChannelError::BadBandwidth { direction: "from_dpu", gbps: f64::INFINITY });
        // bytes = 0 is a valid no-op transfer, not a config error.
        let t = TransferConfig::paper();
        assert_eq!(t.to_dpu_ns(0), 0.0);
        assert_eq!(t.from_dpu_ns(0), 0.0);
    }

    #[test]
    fn mode_labels_round_trip_and_reject_garbage() {
        for mode in ChannelMode::all() {
            assert_eq!(ChannelMode::by_name(mode.label()).unwrap(), mode);
            assert_eq!(ChannelMode::by_name(&mode.label().to_uppercase()).unwrap(), mode);
        }
        assert_eq!(
            ChannelMode::by_name("warp-speed").unwrap_err(),
            ChannelError::UnknownMode("warp-speed".into())
        );
    }

    #[test]
    fn channel_config_validation() {
        assert!(ChannelConfig::try_new(TransferConfig::paper(), ChannelMode::Broadcast, 64).is_ok());
        assert_eq!(
            ChannelConfig::try_new(TransferConfig::paper(), ChannelMode::Blocking, 0).unwrap_err(),
            ChannelError::EmptyRank
        );
        let bad = TransferConfig { to_dpu_gbps: 0.0, ..TransferConfig::paper() };
        assert!(ChannelConfig::try_new(bad, ChannelMode::Blocking, 64).is_err());
        let from_v1: ChannelConfig = TransferConfig::paper().into();
        assert_eq!(from_v1, ChannelConfig::blocking());
        assert_eq!(ChannelConfig::default().mode, ChannelMode::Blocking);
    }

    /// One virtual round trip: push per-DPU chunks, run a kernel, pull.
    fn round_trip(mode: ChannelMode, n_dpus: u32, chunks: &[u64], kernel_ns: f64) -> (f64, f64) {
        let mut ch = Channel::new(ChannelConfig::with_mode(mode), n_dpus);
        let to = ch.push(chunks);
        ch.kernel(kernel_ns);
        let from = ch.pull(*chunks.iter().max().unwrap());
        (to + kernel_ns + from, ch.wall_ns())
    }

    #[test]
    fn blocking_round_trip_is_the_serial_sum() {
        let chunks = [4096u64, 1024, 4096, 64];
        let (sum, wall) = round_trip(ChannelMode::Blocking, 4, &chunks, 500.0);
        assert!((wall - sum).abs() < 1e-9, "blocking wall == serial sum");
        let t = TransferConfig::paper();
        assert!((sum - (t.to_dpu_ns(4096) + 500.0 + t.from_dpu_ns(4096))).abs() < 1e-9);
    }

    #[test]
    fn overlap_hides_pushes_under_kernels_but_never_pulls() {
        let chunks = [8192u64; 4];
        let t = TransferConfig::paper();
        let (sum, wall) = round_trip(ChannelMode::Overlapped, 4, &chunks, 100_000.0);
        // The push fits under the kernel entirely; the pull cannot hide.
        assert!((wall - (100_000.0 + t.from_dpu_ns(8192))).abs() < 1e-9);
        assert!(wall < sum);
    }

    #[test]
    fn overlap_never_beats_the_channel_itself() {
        // Kernel shorter than the push: the pull barrier exposes the
        // remaining transfer time; wall == push + pull.
        let chunks = [65536u64; 2];
        let t = TransferConfig::paper();
        let (_, wall) = round_trip(ChannelMode::Overlapped, 2, &chunks, 10.0);
        assert!((wall - (t.to_dpu_ns(65536) + t.from_dpu_ns(65536))).abs() < 1e-9);
    }

    #[test]
    fn broadcast_splits_across_the_rank() {
        let cfg = ChannelConfig { rank_dpus: 8, ..ChannelConfig::broadcast() };
        let mut ch = Channel::new(cfg, 8);
        let t = TransferConfig::paper();
        let ns = ch.broadcast(8192);
        assert!((ns - t.to_dpu_ns(8192) / 8.0).abs() < 1e-9);
        // Blocking prices the same broadcast at the full per-DPU cost.
        let mut legacy =
            Channel::new(ChannelConfig { rank_dpus: 8, ..ChannelConfig::blocking() }, 8);
        assert!((legacy.broadcast(8192) - t.to_dpu_ns(8192)).abs() < 1e-9);
    }

    #[test]
    fn partial_rank_gates_the_broadcast() {
        // 10 DPUs at rank_dpus=8: the 2-DPU tail rank is the slowest.
        let cfg = ChannelConfig { rank_dpus: 8, ..ChannelConfig::broadcast() };
        let mut ch = Channel::new(cfg, 10);
        let t = TransferConfig::paper();
        assert!((ch.broadcast(8192) - t.to_dpu_ns(8192) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn overlapped_pushes_queue_on_their_rank_channel() {
        let cfg = ChannelConfig { rank_dpus: 4, ..ChannelConfig::overlapped() };
        let mut ch = Channel::new(cfg, 4);
        let t = TransferConfig::paper();
        ch.push(&[4096; 4]);
        ch.push(&[4096; 4]);
        // No kernel ran: both pushes are in flight back-to-back.
        assert!((ch.wall_ns() - 2.0 * t.to_dpu_ns(4096)).abs() < 1e-9);
        assert_eq!(ch.host_ns(), 0.0);
        // The pull barriers on both, then adds its own synchronous time.
        let from = ch.pull(64);
        assert!((ch.wall_ns() - (2.0 * t.to_dpu_ns(4096) + from)).abs() < 1e-9);
        assert_eq!(ch.host_ns(), ch.wall_ns());
    }

    #[test]
    fn reset_rewinds_to_time_zero() {
        let mut ch = Channel::new(ChannelConfig::overlapped(), 2);
        ch.push(&[1024, 1024]);
        ch.kernel(10.0);
        ch.reset();
        assert_eq!(ch.host_ns(), 0.0);
        assert_eq!(ch.wall_ns(), 0.0);
    }
}
