//! The multi-DPU system: a set of DPUs driven synchronously by the host.

use pim_asm::DpuProgram;
use pim_dpu::{Dpu, DpuConfig, DpuRunStats, SimError};
use pim_trace::{SystemTrace, TraceEvent};

use crate::xfer::{Channel, ChannelConfig, ChannelMode};

/// Accumulated end-to-end time, split the way Fig 10 splits it: input
/// transfer, kernel execution, output transfer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecutionTimeline {
    /// CPU→DPU transfer time, ns.
    pub to_dpu_ns: f64,
    /// Kernel execution time (max over DPUs, summed over launches), ns.
    pub kernel_ns: f64,
    /// CPU←DPU transfer time, ns.
    pub from_dpu_ns: f64,
    /// Number of kernel launches.
    pub launches: u32,
    /// Wall-clock end of the run on the virtual channel timeline, ns.
    /// Only the v2 channel modes set it (transfers there may overlap
    /// kernel execution, so the wall clock can undercut the serialized
    /// phase sum); it stays `0.0` under [`ChannelMode::Blocking`], where
    /// the wall clock *is* [`ExecutionTimeline::total_ns`]. Read through
    /// [`ExecutionTimeline::wall_ns`].
    pub end_ns: f64,
}

impl ExecutionTimeline {
    /// Total end-to-end time in nanoseconds with every phase serialized
    /// (the Fig 10 stacking; phase durations, not wall clock).
    #[must_use]
    pub fn total_ns(&self) -> f64 {
        self.to_dpu_ns + self.kernel_ns + self.from_dpu_ns
    }

    /// End-to-end wall-clock time: the channel-timeline end when a v2
    /// channel mode tracked one, else the serialized phase sum.
    #[must_use]
    pub fn wall_ns(&self) -> f64 {
        if self.end_ns > 0.0 {
            self.end_ns
        } else {
            self.total_ns()
        }
    }

    /// Fractions `(to_dpu, kernel, from_dpu)` of the total.
    #[must_use]
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total_ns();
        if t == 0.0 {
            (0.0, 0.0, 0.0)
        } else {
            (self.to_dpu_ns / t, self.kernel_ns / t, self.from_dpu_ns / t)
        }
    }
}

/// The result of one synchronous launch across the whole set.
#[derive(Debug, Clone)]
pub struct LaunchReport {
    /// Per-DPU run statistics, indexed by DPU.
    pub per_dpu: Vec<DpuRunStats>,
    /// Kernel time of this launch (slowest DPU), ns.
    pub kernel_ns: f64,
}

impl LaunchReport {
    /// Total instructions executed across the set.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.per_dpu.iter().map(|s| s.instructions).sum()
    }

    /// The statistics of the slowest DPU in this launch. Ties break toward
    /// the lowest DPU index, so report ordering is deterministic and can
    /// never diverge between the per-DPU and batched launch paths.
    ///
    /// # Panics
    ///
    /// Panics if the report is empty (a launch always has at least one DPU).
    #[must_use]
    pub fn slowest(&self) -> &DpuRunStats {
        let mut best = self.per_dpu.first().expect("launch reports are non-empty");
        for s in &self.per_dpu[1..] {
            if s.time_ns() > best.time_ns() {
                best = s;
            }
        }
        best
    }
}

/// A host-managed set of DPUs (the SDK's `dpu_set_t`).
///
/// All DPUs share one configuration and one program, per the SPMD model;
/// data is partitioned across them by the host exactly as in the paper's
/// Fig 2(a).
#[derive(Debug)]
pub struct PimSystem {
    dpus: Vec<Dpu>,
    channel: Channel,
    timeline: ExecutionTimeline,
    /// Host-side transfer events, recorded when the DPU config enables
    /// event tracing (`event_trace_capacity > 0`).
    trace_host: Option<Vec<TraceEvent>>,
}

impl PimSystem {
    /// Allocates `n_dpus` DPUs with the given configuration
    /// (`dpu_alloc`). The channel accepts either a bare
    /// [`crate::TransferConfig`] (the legacy blocking pipe, exactly as
    /// before v2) or a full [`ChannelConfig`] selecting a v2 mode.
    ///
    /// # Panics
    ///
    /// Panics if `n_dpus` is zero, the DPU configuration is invalid, or
    /// the channel configuration violates the invariants of
    /// [`ChannelConfig::try_new`].
    #[must_use]
    pub fn new<C: Into<ChannelConfig>>(n_dpus: u32, cfg: DpuConfig, channel: C) -> Self {
        assert!(n_dpus > 0, "a PIM system needs at least one DPU");
        let channel_cfg: ChannelConfig = channel.into();
        if let Err(e) = channel_cfg.xfer.validate() {
            panic!("invalid channel config: {e}");
        }
        let trace_host = (cfg.event_trace_capacity > 0).then(Vec::new);
        let dpus = (0..n_dpus).map(|_| Dpu::new(cfg.clone())).collect();
        PimSystem {
            dpus,
            channel: Channel::new(channel_cfg, n_dpus),
            timeline: ExecutionTimeline::default(),
            trace_host,
        }
    }

    /// The virtual-time channel engine pricing this system's transfers.
    #[must_use]
    pub fn channel(&self) -> &Channel {
        &self.channel
    }

    /// Mirrors the channel's wall clock into the timeline. Blocking mode
    /// leaves `end_ns` at 0.0 so pre-v2 timelines (and everything keyed
    /// on them — goldens, checkpoints) stay bit-identical.
    fn sync_wall(&mut self) {
        if self.channel.mode() != ChannelMode::Blocking {
            self.timeline.end_ns = self.channel.wall_ns();
        }
    }

    /// Prices one parallel CPU→DPU push under the channel mode. Payloads
    /// that are byte-identical across all DPUs are detected in the v2
    /// modes and priced as a broadcast — one write serves the whole set,
    /// the common shape of `launch_all` setup traffic.
    fn price_push(&mut self, chunks: &[&[u8]]) -> f64 {
        if self.channel.mode() == ChannelMode::Blocking {
            let max_bytes = chunks.iter().map(|c| c.len()).max().unwrap_or(0) as u64;
            return self.channel.push_one(0, max_bytes);
        }
        if chunks.len() > 1 && chunks.windows(2).all(|w| w[0] == w[1]) {
            return self.channel.broadcast(chunks[0].len() as u64);
        }
        let lens: Vec<u64> = chunks.iter().map(|c| c.len() as u64).collect();
        self.channel.push(&lens)
    }

    /// Records a host transfer event at the current timeline position.
    /// Call *before* the transfer time is added to the timeline so `at_ns`
    /// marks the transfer's start.
    fn record_host(&mut self, pull: bool, ns: f64, bytes: u64) {
        if let Some(events) = self.trace_host.as_mut() {
            let at_ns = self.timeline.total_ns();
            events.push(if pull {
                TraceEvent::HostPull { at_ns, ns, bytes }
            } else {
                TraceEvent::HostPush { at_ns, ns, bytes }
            });
        }
    }

    /// Takes the structured trace accumulated since the last call: host
    /// transfer events plus every DPU's event ring. Returns `None` unless
    /// the system was built with `event_trace_capacity > 0`.
    pub fn take_trace(&mut self) -> Option<SystemTrace> {
        let host = self.trace_host.as_mut().map(std::mem::take)?;
        let per_dpu = self.dpus.iter_mut().map(|d| d.take_trace().unwrap_or_default()).collect();
        Some(SystemTrace { freq_mhz: self.dpus[0].config().freq_mhz, host, per_dpu })
    }

    /// Number of DPUs in the set.
    #[must_use]
    pub fn n_dpus(&self) -> u32 {
        self.dpus.len() as u32
    }

    /// Access one DPU (e.g. for workload-specific staging).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn dpu(&self, idx: u32) -> &Dpu {
        &self.dpus[idx as usize]
    }

    /// Mutable access to one DPU.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn dpu_mut(&mut self, idx: u32) -> &mut Dpu {
        &mut self.dpus[idx as usize]
    }

    /// The accumulated end-to-end timeline.
    #[must_use]
    pub fn timeline(&self) -> &ExecutionTimeline {
        &self.timeline
    }

    /// Clears the accumulated timeline and rewinds the channel clock
    /// (e.g. between experiments).
    pub fn reset_timeline(&mut self) {
        self.timeline = ExecutionTimeline::default();
        self.channel.reset();
    }

    /// Loads the same program on every DPU (`dpu_load`). Program upload
    /// time is not modelled (the paper's breakdowns start at input
    /// transfer).
    ///
    /// # Errors
    ///
    /// Propagates a [`SimError`] if the program does not fit a DPU.
    pub fn load(&mut self, program: &DpuProgram) -> Result<(), SimError> {
        for dpu in &mut self.dpus {
            dpu.load_program(program)?;
        }
        Ok(())
    }

    /// Validates that a parallel transfer has one chunk per DPU.
    fn check_chunks(&self, chunks: usize) -> Result<(), SimError> {
        if chunks == self.dpus.len() {
            Ok(())
        } else {
            Err(SimError::ChunkCountMismatch { chunks, n_dpus: self.dpus.len() as u32 })
        }
    }

    /// Validates a DPU index against the system size.
    fn check_dpu(&self, dpu: u32) -> Result<(), SimError> {
        if (dpu as usize) < self.dpus.len() {
            Ok(())
        } else {
            Err(SimError::BadDpuIndex { dpu, n_dpus: self.dpus.len() as u32 })
        }
    }

    /// Parallel CPU→DPU transfer into MRAM (`dpu_push_xfer(TO_DPU)`):
    /// `chunks[i]` is written to DPU `i` at `addr`. Takes the time of the
    /// largest chunk.
    ///
    /// # Panics
    ///
    /// Panics if `chunks` does not have one entry per DPU.
    pub fn push_to_mram(&mut self, addr: u32, chunks: &[&[u8]]) {
        self.try_push_to_mram(addr, chunks).expect("one chunk per DPU");
    }

    /// Fallible [`PimSystem::push_to_mram`]: a mis-sized batch (e.g. a
    /// scheduler packing fewer tenants than DPUs) surfaces as
    /// [`SimError::ChunkCountMismatch`] instead of aborting the process.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ChunkCountMismatch`] unless `chunks` has exactly
    /// one entry per DPU.
    pub fn try_push_to_mram(&mut self, addr: u32, chunks: &[&[u8]]) -> Result<(), SimError> {
        self.check_chunks(chunks.len())?;
        let max_bytes = chunks.iter().map(|c| c.len()).max().unwrap_or(0) as u64;
        for (dpu, chunk) in self.dpus.iter_mut().zip(chunks) {
            dpu.write_mram(addr, chunk);
        }
        let ns = self.price_push(chunks);
        self.record_host(false, ns, max_bytes);
        self.timeline.to_dpu_ns += ns;
        self.sync_wall();
        Ok(())
    }

    /// Broadcast CPU→DPU transfer: the same bytes to every DPU's MRAM.
    /// The v2 channel modes price this as one rank-parallel write
    /// serving the whole set ([`Channel::broadcast`]).
    pub fn broadcast_to_mram(&mut self, addr: u32, data: &[u8]) {
        for dpu in &mut self.dpus {
            dpu.write_mram(addr, data);
        }
        let ns = self.channel.broadcast(data.len() as u64);
        self.record_host(false, ns, data.len() as u64);
        self.timeline.to_dpu_ns += ns;
        self.sync_wall();
    }

    /// Single-DPU CPU→DPU transfer into MRAM (serial; accumulates its own
    /// transfer time).
    ///
    /// # Panics
    ///
    /// Panics if `dpu` is out of range; use
    /// [`PimSystem::try_copy_to_mram`] where the index is not statically
    /// known to be valid.
    pub fn copy_to_mram(&mut self, dpu: u32, addr: u32, data: &[u8]) {
        self.try_copy_to_mram(dpu, addr, data).expect("DPU index in range");
    }

    /// Fallible [`PimSystem::copy_to_mram`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadDpuIndex`] when `dpu` is out of range.
    pub fn try_copy_to_mram(&mut self, dpu: u32, addr: u32, data: &[u8]) -> Result<(), SimError> {
        self.check_dpu(dpu)?;
        self.dpus[dpu as usize].write_mram(addr, data);
        let ns = self.channel.push_one(dpu, data.len() as u64);
        self.record_host(false, ns, data.len() as u64);
        self.timeline.to_dpu_ns += ns;
        self.sync_wall();
        Ok(())
    }

    /// Parallel CPU←DPU transfer out of MRAM (`dpu_push_xfer(FROM_DPU)`).
    /// Reads `len` bytes at `addr` from every DPU; takes the time of one
    /// chunk (they move in parallel).
    #[must_use]
    pub fn pull_from_mram(&mut self, addr: u32, len: u32) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        self.pull_from_mram_into(addr, len, &mut out);
        out
    }

    /// [`PimSystem::pull_from_mram`] into a caller-owned buffer, reusing
    /// the outer vector and every inner allocation across calls — for
    /// readback loops (multi-launch workloads, experiment sweeps) that
    /// would otherwise allocate one `Vec<Vec<u8>>` per iteration.
    ///
    /// `out` is resized to one entry per DPU; transfer-time accounting is
    /// identical to the allocating variant.
    pub fn pull_from_mram_into(&mut self, addr: u32, len: u32, out: &mut Vec<Vec<u8>>) {
        out.resize_with(self.dpus.len(), Vec::new);
        for (dpu, buf) in self.dpus.iter().zip(out.iter_mut()) {
            dpu.read_mram_into(addr, len, buf);
        }
        let ns = self.channel.pull(u64::from(len));
        self.record_host(true, ns, u64::from(len));
        self.timeline.from_dpu_ns += ns;
        self.sync_wall();
    }

    /// Single-DPU CPU←DPU transfer out of MRAM.
    ///
    /// # Panics
    ///
    /// Panics if `dpu` is out of range; use
    /// [`PimSystem::try_copy_from_mram`] where the index is not statically
    /// known to be valid.
    #[must_use]
    pub fn copy_from_mram(&mut self, dpu: u32, addr: u32, len: u32) -> Vec<u8> {
        self.try_copy_from_mram(dpu, addr, len).expect("DPU index in range")
    }

    /// Fallible [`PimSystem::copy_from_mram`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadDpuIndex`] when `dpu` is out of range.
    pub fn try_copy_from_mram(
        &mut self,
        dpu: u32,
        addr: u32,
        len: u32,
    ) -> Result<Vec<u8>, SimError> {
        self.check_dpu(dpu)?;
        let out = self.dpus[dpu as usize].read_mram(addr, len);
        let ns = self.channel.pull(u64::from(len));
        self.record_host(true, ns, u64::from(len));
        self.timeline.from_dpu_ns += ns;
        self.sync_wall();
        Ok(out)
    }

    /// Parallel transfer into a named WRAM symbol on every DPU
    /// (`dpu_push_xfer` against a host variable, like `size_per_dpu` in
    /// the paper's Fig 2(a)).
    ///
    /// # Panics
    ///
    /// Panics if `chunks` does not have one entry per DPU or the symbol is
    /// unknown.
    pub fn push_to_symbol(&mut self, name: &str, chunks: &[&[u8]]) {
        self.try_push_to_symbol(name, chunks).expect("one chunk per DPU");
    }

    /// Fallible [`PimSystem::push_to_symbol`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ChunkCountMismatch`] unless `chunks` has exactly
    /// one entry per DPU.
    ///
    /// # Panics
    ///
    /// Still panics if the symbol is unknown on some DPU (a programming
    /// error, not a batch-sizing error).
    pub fn try_push_to_symbol(&mut self, name: &str, chunks: &[&[u8]]) -> Result<(), SimError> {
        self.check_chunks(chunks.len())?;
        let max_bytes = chunks.iter().map(|c| c.len()).max().unwrap_or(0) as u64;
        for (dpu, chunk) in self.dpus.iter_mut().zip(chunks) {
            dpu.write_wram_symbol(name, chunk);
        }
        let ns = self.price_push(chunks);
        self.record_host(false, ns, max_bytes);
        self.timeline.to_dpu_ns += ns;
        self.sync_wall();
        Ok(())
    }

    /// Broadcast the same bytes into a named WRAM symbol on every DPU.
    /// Priced like [`PimSystem::broadcast_to_mram`].
    pub fn broadcast_to_symbol(&mut self, name: &str, data: &[u8]) {
        for dpu in &mut self.dpus {
            dpu.write_wram_symbol(name, data);
        }
        let ns = self.channel.broadcast(data.len() as u64);
        self.record_host(false, ns, data.len() as u64);
        self.timeline.to_dpu_ns += ns;
        self.sync_wall();
    }

    /// Reads a named WRAM symbol back from every DPU. As with every
    /// parallel transfer, latency is that of the largest per-DPU chunk
    /// (DESIGN §5.11) — symbols may be sized differently per DPU under
    /// flexible linking.
    #[must_use]
    pub fn pull_from_symbol(&mut self, name: &str) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        self.pull_from_symbol_into(name, &mut out);
        out
    }

    /// [`PimSystem::pull_from_symbol`] into a caller-owned buffer (see
    /// [`PimSystem::pull_from_mram_into`]); latency is still that of the
    /// largest per-DPU chunk.
    pub fn pull_from_symbol_into(&mut self, name: &str, out: &mut Vec<Vec<u8>>) {
        out.resize_with(self.dpus.len(), Vec::new);
        for (dpu, buf) in self.dpus.iter().zip(out.iter_mut()) {
            dpu.read_wram_symbol_into(name, buf);
        }
        let max_bytes = out.iter().map(Vec::len).max().unwrap_or(0) as u64;
        let ns = self.channel.pull(max_bytes);
        self.record_host(true, ns, max_bytes);
        self.timeline.from_dpu_ns += ns;
        self.sync_wall();
    }

    /// Launches the loaded kernel synchronously on every DPU
    /// (`dpu_launch(DPU_SYNCHRONOUS)`). The launch's kernel time is that of
    /// the slowest DPU; it accumulates into the timeline.
    ///
    /// DPUs are simulated on parallel host threads — the multi-threaded
    /// simulation the paper leaves as future work (§III-D). The set is
    /// split into contiguous chunks over at most
    /// `std::thread::available_parallelism` workers (one OS thread per
    /// *worker*, not per DPU, so a 2048-DPU rank doesn't spawn 2048
    /// threads). This is safe and bit-deterministic because DPUs share no
    /// state during a kernel (§II-B: no inter-DPU datapath); results are
    /// collected in DPU order.
    ///
    /// # Errors
    ///
    /// Propagates the [`SimError`] of the lowest-indexed faulting DPU.
    pub fn launch_all(&mut self) -> Result<LaunchReport, SimError> {
        let batch = self.dpus[0].config().batch_dpus;
        if batch > 0 {
            return self.launch_all_batched(batch as usize);
        }
        let per_dpu = self.run_all_chunked().into_iter().collect::<Result<Vec<_>, _>>()?;
        let kernel_ns = per_dpu.iter().map(DpuRunStats::time_ns).fold(0.0f64, f64::max);
        self.timeline.kernel_ns += kernel_ns;
        self.timeline.launches += 1;
        self.channel.kernel(kernel_ns);
        self.sync_wall();
        Ok(LaunchReport { per_dpu, kernel_ns })
    }

    /// Launches every DPU and returns a per-DPU `Result` instead of
    /// short-circuiting on the first failure — the launch path a
    /// fault-tolerant runtime needs: one faulted device must not hide the
    /// results of the healthy ones (`pim-serve` re-dispatches the failed
    /// slice and keeps the rest).
    ///
    /// The kernel time charged to the timeline is the max over the
    /// *successful* launches (a DPU that faulted at the launch boundary
    /// never ran); faults armed via [`Dpu::arm_fault`] surface here as
    /// their typed [`SimError`] carrying the faulting DPU's index. Always
    /// uses the per-DPU executor (never the SoA batch path) so each
    /// device's armed-fault slot is checked individually.
    pub fn launch_each(&mut self) -> Vec<Result<DpuRunStats, SimError>> {
        let results = self.run_all_chunked();
        let kernel_ns = results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(DpuRunStats::time_ns)
            .fold(0.0f64, f64::max);
        self.timeline.kernel_ns += kernel_ns;
        self.timeline.launches += 1;
        self.channel.kernel(kernel_ns);
        self.sync_wall();
        results
    }

    /// Runs every DPU through [`launch_one`] on the chunked worker pool,
    /// collecting per-DPU results in DPU order.
    fn run_all_chunked(&mut self) -> Vec<Result<DpuRunStats, SimError>> {
        let n_workers = std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(self.dpus.len());
        if n_workers <= 1 {
            self.dpus.iter_mut().enumerate().map(|(i, dpu)| launch_one(dpu, i as u32)).collect()
        } else {
            let chunk_len = self.dpus.len().div_ceil(n_workers);
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .dpus
                    .chunks_mut(chunk_len)
                    .enumerate()
                    .map(|(ci, chunk)| {
                        let base = ci * chunk_len;
                        scope.spawn(move || {
                            chunk
                                .iter_mut()
                                .enumerate()
                                .map(|(i, dpu)| launch_one(dpu, (base + i) as u32))
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| -> Vec<_> { h.join().expect("DPU simulation thread panicked") })
                    .collect()
            })
        }
    }

    /// Launches the loaded kernel through the rank-scale SoA batch
    /// executor ([`pim_dpu::run_batch`]): the set is partitioned into
    /// batches of up to `max_batch` contiguous DPUs, and *batches* — not
    /// individual DPUs — are sharded over the worker threads, so each
    /// worker steps its whole batch out of one contiguous state block.
    ///
    /// Timing, statistics, and memory end-state are byte-identical to
    /// [`PimSystem::launch_all`]'s per-DPU path regardless of `max_batch`
    /// — batch boundaries are timing-invisible. Reached automatically from
    /// `launch_all` when the DPU configuration sets
    /// [`DpuConfig::batch_dpus`].
    ///
    /// # Errors
    ///
    /// Propagates the [`SimError`] of the lowest-indexed faulting DPU.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn launch_all_batched(&mut self, max_batch: usize) -> Result<LaunchReport, SimError> {
        assert!(max_batch > 0, "batch size must be at least 1 DPU");
        // The SoA executor steps a whole batch out of one state block and
        // cannot fail a single member at the boundary, so armed faults are
        // consumed up front: every armed slot is taken (one-shot, matching
        // the per-DPU path, which launches all DPUs before propagating) and
        // the lowest-indexed fault is the one reported.
        let mut armed = None;
        for (i, dpu) in self.dpus.iter_mut().enumerate() {
            if let Some(kind) = dpu.take_armed_fault() {
                armed.get_or_insert(kind.into_error(i as u32));
            }
        }
        if let Some(err) = armed {
            return Err(err);
        }
        let mut batches: Vec<&mut [Dpu]> = self.dpus.chunks_mut(max_batch).collect();
        let n_workers = std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(batches.len());
        let results: Vec<Result<DpuRunStats, SimError>> = if n_workers <= 1 {
            batches.iter_mut().flat_map(|b| pim_dpu::run_batch(b)).collect()
        } else {
            let per_worker = batches.len().div_ceil(n_workers);
            std::thread::scope(|scope| {
                let handles: Vec<_> = batches
                    .chunks_mut(per_worker)
                    .map(|group| {
                        scope.spawn(move || {
                            group.iter_mut().flat_map(|b| pim_dpu::run_batch(b)).collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| -> Vec<_> { h.join().expect("DPU simulation thread panicked") })
                    .collect()
            })
        };
        let per_dpu = results.into_iter().collect::<Result<Vec<_>, _>>()?;
        let kernel_ns = per_dpu.iter().map(DpuRunStats::time_ns).fold(0.0f64, f64::max);
        self.timeline.kernel_ns += kernel_ns;
        self.timeline.launches += 1;
        self.channel.kernel(kernel_ns);
        self.sync_wall();
        Ok(LaunchReport { per_dpu, kernel_ns })
    }
}

/// Launches one DPU, surfacing an armed [`pim_dpu::FaultKind`] as its typed
/// error carrying the global DPU index `idx` — the host-side fault
/// injection boundary. Taking the fault disarms the DPU (one-shot), and a
/// faulted launch simulates no cycles.
fn launch_one(dpu: &mut Dpu, idx: u32) -> Result<DpuRunStats, SimError> {
    match dpu.take_armed_fault() {
        Some(kind) => Err(kind.into_error(idx)),
        None => dpu.launch(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xfer::TransferConfig;
    use pim_asm::KernelBuilder;
    use pim_isa::Cond;

    /// Kernel: sums `count` words from MRAM base 0 into WRAM symbol "sum".
    fn sum_kernel(count: u32) -> DpuProgram {
        let mut k = KernelBuilder::new();
        let buf = k.global_zeroed("buf", 256);
        let _sum = k.global_zeroed("sum", 4);
        let [w, m, i, v, acc, p] = k.regs(["w", "m", "i", "v", "acc", "p"]);
        k.movi(acc, 0);
        k.movi(m, 0);
        k.movi(i, (count / 64) as i32);
        let outer = k.label_here("outer");
        k.movi(w, buf as i32);
        k.ldma(w, m, 256);
        k.movi(p, 64);
        let inner = k.label_here("inner");
        k.lw(v, w, 0);
        k.add(acc, acc, v);
        k.add(w, w, 4);
        k.sub(p, p, 1);
        k.branch(Cond::Ne, p, 0, &inner);
        k.add(m, m, 256);
        k.sub(i, i, 1);
        k.branch(Cond::Ne, i, 0, &outer);
        k.movi(p, 256); // "sum" address: after 256-byte buf
        k.sw(acc, p, 0);
        k.stop();
        k.build().unwrap()
    }

    #[test]
    fn partitioned_sum_across_four_dpus() {
        let count = 256u32; // words per DPU
        let program = sum_kernel(count);
        let mut sys = PimSystem::new(4, DpuConfig::paper_baseline(1), TransferConfig::paper());
        sys.load(&program).unwrap();
        // DPU d gets words d*1000 .. d*1000+count.
        let chunks: Vec<Vec<u8>> = (0..4)
            .map(|d| (0..count).flat_map(|i| (d * 1000 + i as i32).to_le_bytes()).collect())
            .collect();
        let refs: Vec<&[u8]> = chunks.iter().map(Vec::as_slice).collect();
        sys.push_to_mram(0, &refs);
        let report = sys.launch_all().unwrap();
        assert_eq!(report.per_dpu.len(), 4);
        let sums = sys.pull_from_symbol("sum");
        for (d, bytes) in sums.iter().enumerate() {
            let got = i32::from_le_bytes(bytes.as_slice().try_into().unwrap());
            let expect: i32 = (0..count as i32).map(|i| d as i32 * 1000 + i).sum();
            assert_eq!(got, expect, "dpu {d}");
        }
    }

    #[test]
    fn timeline_accumulates_all_three_phases() {
        let program = sum_kernel(64);
        let mut sys = PimSystem::new(2, DpuConfig::paper_baseline(1), TransferConfig::paper());
        sys.load(&program).unwrap();
        let data = vec![0u8; 64 * 4];
        sys.push_to_mram(0, &[&data, &data]);
        sys.launch_all().unwrap();
        let _ = sys.pull_from_symbol("sum");
        let t = sys.timeline();
        assert!(t.to_dpu_ns > 0.0);
        assert!(t.kernel_ns > 0.0);
        assert!(t.from_dpu_ns > 0.0);
        assert_eq!(t.launches, 1);
        let (a, b, c) = t.fractions();
        assert!((a + b + c - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_transfer_takes_max_chunk_time() {
        let program = sum_kernel(64);
        let mut sys = PimSystem::new(2, DpuConfig::paper_baseline(1), TransferConfig::paper());
        sys.load(&program).unwrap();
        let small = vec![0u8; 64];
        let big = vec![0u8; 64 * 1024];
        sys.push_to_mram(0, &[&small, &big]);
        let expected = TransferConfig::paper().to_dpu_ns(64 * 1024);
        assert!((sys.timeline().to_dpu_ns - expected).abs() < 1e-9);
    }

    #[test]
    fn readback_is_slower_than_upload_for_same_bytes() {
        let program = sum_kernel(64);
        let mut sys = PimSystem::new(1, DpuConfig::paper_baseline(1), TransferConfig::paper());
        sys.load(&program).unwrap();
        let data = vec![0u8; 4096];
        sys.push_to_mram(0, &[&data]);
        let up = sys.timeline().to_dpu_ns;
        let _ = sys.pull_from_mram(0, 4096);
        let down = sys.timeline().from_dpu_ns;
        assert!(down > 4.0 * up, "CPU←DPU must be ≈4.7× slower");
    }

    #[test]
    fn broadcast_and_per_dpu_symbols() {
        let program = sum_kernel(64);
        let mut sys = PimSystem::new(3, DpuConfig::paper_baseline(1), TransferConfig::paper());
        sys.load(&program).unwrap();
        sys.broadcast_to_symbol("sum", &7i32.to_le_bytes());
        let vals = sys.pull_from_symbol("sum");
        for v in vals {
            assert_eq!(i32::from_le_bytes(v.as_slice().try_into().unwrap()), 7);
        }
    }

    #[test]
    fn kernel_time_is_slowest_dpu() {
        let program = sum_kernel(64);
        let mut sys = PimSystem::new(2, DpuConfig::paper_baseline(1), TransferConfig::paper());
        sys.load(&program).unwrap();
        let data = vec![1u8; 64 * 4];
        sys.push_to_mram(0, &[&data, &data]);
        let report = sys.launch_all().unwrap();
        let max = report.per_dpu.iter().map(DpuRunStats::time_ns).fold(0.0, f64::max);
        assert!((report.kernel_ns - max).abs() < 1e-9);
        assert!((report.slowest().time_ns() - max).abs() < 1e-9);
    }

    #[test]
    fn armed_fault_fails_only_its_dpu_in_launch_each() {
        let program = sum_kernel(64);
        let mut sys = PimSystem::new(4, DpuConfig::paper_baseline(1), TransferConfig::paper());
        sys.load(&program).unwrap();
        let data = vec![0u8; 64 * 4];
        sys.push_to_mram(0, &[&data, &data, &data, &data]);
        sys.dpu_mut(2).arm_fault(pim_dpu::FaultKind::Transient);
        let results = sys.launch_each();
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            if i == 2 {
                assert_eq!(r.as_ref().unwrap_err(), &SimError::InjectedFault { dpu: 2 });
            } else {
                assert!(r.is_ok(), "dpu {i}: {r:?}");
            }
        }
        assert_eq!(sys.timeline().launches, 1);
        assert!(sys.timeline().kernel_ns > 0.0, "healthy DPUs still charge kernel time");
        // One-shot: the fault was consumed, the next launch succeeds.
        assert!(sys.launch_each().iter().all(Result::is_ok));
    }

    #[test]
    fn launch_all_propagates_lowest_indexed_fault() {
        let program = sum_kernel(64);
        let mut sys = PimSystem::new(4, DpuConfig::paper_baseline(1), TransferConfig::paper());
        sys.load(&program).unwrap();
        let data = vec![0u8; 64 * 4];
        sys.push_to_mram(0, &[&data, &data, &data, &data]);
        sys.dpu_mut(3).arm_fault(pim_dpu::FaultKind::RankOffline { rank: 0 });
        sys.dpu_mut(1).arm_fault(pim_dpu::FaultKind::Stuck { timeout_ns: 9 });
        let err = sys.launch_all().unwrap_err();
        assert_eq!(err, SimError::DpuStuck { dpu: 1, timeout_ns: 9 });
        // Both armed slots were consumed by the failed launch.
        assert!(sys.launch_all().is_ok());
    }

    #[test]
    fn batched_launch_surfaces_armed_faults_before_running() {
        let program = sum_kernel(64);
        let mut sys = PimSystem::new(
            4,
            DpuConfig::paper_baseline(1).with_batched(2),
            TransferConfig::paper(),
        );
        sys.load(&program).unwrap();
        let data = vec![0u8; 64 * 4];
        sys.push_to_mram(0, &[&data, &data, &data, &data]);
        sys.dpu_mut(2).arm_fault(pim_dpu::FaultKind::Transient);
        let err = sys.launch_all().unwrap_err();
        assert_eq!(err, SimError::InjectedFault { dpu: 2 });
        assert_eq!(sys.timeline().launches, 0, "faulted batched launch simulates nothing");
        assert!(sys.launch_all().is_ok());
    }

    #[test]
    #[should_panic(expected = "one chunk per DPU")]
    fn mismatched_chunks_panic() {
        let mut sys = PimSystem::new(2, DpuConfig::paper_baseline(1), TransferConfig::paper());
        sys.push_to_mram(0, &[&[0u8; 4] as &[u8]]);
    }

    /// A program whose only job is to own a WRAM symbol of a given size.
    fn sym_program(bytes: u32) -> DpuProgram {
        let mut k = KernelBuilder::new();
        let _s = k.global_zeroed("sym", bytes);
        k.stop();
        k.build().unwrap()
    }

    #[test]
    fn pull_from_symbol_charges_the_largest_chunk() {
        let mut sys = PimSystem::new(3, DpuConfig::paper_baseline(1), TransferConfig::paper());
        sys.dpu_mut(0).load_program(&sym_program(4096)).unwrap();
        sys.dpu_mut(1).load_program(&sym_program(64)).unwrap();
        sys.dpu_mut(2).load_program(&sym_program(256)).unwrap();
        let out = sys.pull_from_symbol("sym");
        assert_eq!(out.iter().map(Vec::len).collect::<Vec<_>>(), [4096, 64, 256]);
        // DESIGN §5.11: the parallel readback takes the time of the
        // max-bytes DPU, not whichever DPU happens to be first.
        let expected = TransferConfig::paper().from_dpu_ns(4096);
        assert!((sys.timeline().from_dpu_ns - expected).abs() < 1e-9);
    }

    #[test]
    fn slowest_breaks_ties_by_dpu_index() {
        let program = sum_kernel(64);
        let mut sys = PimSystem::new(3, DpuConfig::paper_baseline(1), TransferConfig::paper());
        sys.load(&program).unwrap();
        let data = vec![2u8; 64 * 4];
        sys.push_to_mram(0, &[&data, &data, &data]);
        // Identical inputs → identical times on every DPU: the tie must
        // resolve to index 0, not whichever the iterator yields last.
        let report = sys.launch_all().unwrap();
        assert!(std::ptr::eq(report.slowest(), &report.per_dpu[0]));
    }

    #[test]
    fn pull_into_variants_match_allocating_pulls() {
        let program = sum_kernel(64);
        let mut sys = PimSystem::new(3, DpuConfig::paper_baseline(1), TransferConfig::paper());
        sys.load(&program).unwrap();
        let chunks: Vec<Vec<u8>> =
            (0..3u8).map(|d| (0..=255u8).map(|i| d.wrapping_mul(i)).collect()).collect();
        let refs: Vec<&[u8]> = chunks.iter().map(Vec::as_slice).collect();
        sys.push_to_mram(0, &refs);
        sys.launch_all().unwrap();
        let mram = sys.pull_from_mram(0, 256);
        let t_after_alloc = sys.timeline().from_dpu_ns;
        let mut mram_into = vec![vec![7u8; 3]; 5]; // wrong shape on purpose
        sys.pull_from_mram_into(0, 256, &mut mram_into);
        assert_eq!(mram, mram_into);
        // Both variants charge the same transfer time.
        assert!((sys.timeline().from_dpu_ns - 2.0 * t_after_alloc).abs() < 1e-9);
        let sum = sys.pull_from_symbol("sum");
        let mut sum_into = Vec::new();
        sys.pull_from_symbol_into("sum", &mut sum_into);
        assert_eq!(sum, sum_into);
    }

    #[test]
    fn batched_launch_matches_per_dpu_launch() {
        let n = 7u32;
        let program = sum_kernel(64);
        let chunks: Vec<Vec<u8>> = (0..n as i32)
            .map(|d| (0..64).flat_map(|i| (d * 100 + i).to_le_bytes()).collect())
            .collect();
        let refs: Vec<&[u8]> = chunks.iter().map(Vec::as_slice).collect();

        let mut base = PimSystem::new(n, DpuConfig::paper_baseline(2), TransferConfig::paper());
        base.load(&program).unwrap();
        base.push_to_mram(0, &refs);
        let want = base.launch_all().unwrap();

        // A batch size that does not divide the population, routed through
        // the `batch_dpus` config knob exactly as workloads reach it.
        let cfg = DpuConfig::paper_baseline(2).with_batched(3);
        let mut sys = PimSystem::new(n, cfg, TransferConfig::paper());
        sys.load(&program).unwrap();
        sys.push_to_mram(0, &refs);
        let got = sys.launch_all().unwrap();

        assert_eq!(got.per_dpu.len(), want.per_dpu.len());
        for (g, w) in got.per_dpu.iter().zip(&want.per_dpu) {
            assert_eq!(format!("{g:?}"), format!("{w:?}"));
        }
        assert!((got.kernel_ns - want.kernel_ns).abs() < 1e-12);
        for (g, w) in sys.pull_from_symbol("sum").iter().zip(base.pull_from_symbol("sum").iter()) {
            assert_eq!(g, w);
        }
    }

    /// Runs the standard push → launch → pull round trip under `mode` and
    /// returns the finished timeline.
    fn round_trip_timeline(mode: crate::ChannelMode) -> ExecutionTimeline {
        let program = sum_kernel(64);
        let cfg = crate::ChannelConfig::with_mode(mode);
        let mut sys = PimSystem::new(2, DpuConfig::paper_baseline(1), cfg);
        sys.load(&program).unwrap();
        let a: Vec<u8> = (0..64).flat_map(|i: i32| i.to_le_bytes()).collect();
        let b: Vec<u8> = (0..64).flat_map(|i: i32| (i + 9).to_le_bytes()).collect();
        sys.push_to_mram(0, &[&a, &b]);
        sys.launch_all().unwrap();
        let _ = sys.pull_from_symbol("sum");
        *sys.timeline()
    }

    #[test]
    fn blocking_mode_keeps_end_ns_unset_and_wall_equals_total() {
        let t = round_trip_timeline(crate::ChannelMode::Blocking);
        assert_eq!(t.end_ns, 0.0, "legacy mode never touches end_ns");
        assert!((t.wall_ns() - t.total_ns()).abs() < 1e-12);
    }

    #[test]
    fn overlapped_mode_tracks_a_shorter_wall_clock() {
        let blocking = round_trip_timeline(crate::ChannelMode::Blocking);
        let over = round_trip_timeline(crate::ChannelMode::Overlapped);
        // Phase sums are identical (distinct chunks, same kernel)…
        assert_eq!(blocking.to_dpu_ns, over.to_dpu_ns);
        assert_eq!(blocking.kernel_ns, over.kernel_ns);
        assert_eq!(blocking.from_dpu_ns, over.from_dpu_ns);
        // …but the push hides under the kernel, shortening the wall.
        assert!(over.end_ns > 0.0);
        assert!(over.wall_ns() < blocking.wall_ns());
        // The pull can never hide: wall ≥ kernel + from phases.
        assert!(over.wall_ns() >= over.kernel_ns + over.from_dpu_ns - 1e-9);
    }

    #[test]
    fn identical_chunks_price_as_broadcast_in_v2_modes() {
        let program = sum_kernel(64);
        let data = vec![3u8; 64 * 4];
        let chunks: Vec<&[u8]> = vec![&data, &data, &data, &data];
        let mk = |mode| {
            let cfg =
                crate::ChannelConfig { rank_dpus: 4, ..crate::ChannelConfig::with_mode(mode) };
            let mut sys = PimSystem::new(4, DpuConfig::paper_baseline(1), cfg);
            sys.load(&program).unwrap();
            sys.push_to_mram(0, &chunks);
            sys.timeline().to_dpu_ns
        };
        let blocking = mk(crate::ChannelMode::Blocking);
        let broadcast = mk(crate::ChannelMode::Broadcast);
        assert!((blocking - TransferConfig::paper().to_dpu_ns(64 * 4)).abs() < 1e-9);
        assert!((broadcast - blocking / 4.0).abs() < 1e-9, "one write serves all four DPUs");
    }

    #[test]
    fn distinct_chunk_push_prices_identically_in_every_mode() {
        let program = sum_kernel(64);
        let chunks: Vec<Vec<u8>> = (0..3u8).map(|d| vec![d + 1; 64 * 4]).collect();
        let refs: Vec<&[u8]> = chunks.iter().map(Vec::as_slice).collect();
        let mut prices = Vec::new();
        for mode in crate::ChannelMode::all() {
            let cfg = crate::ChannelConfig::with_mode(mode);
            let mut sys = PimSystem::new(3, DpuConfig::paper_baseline(1), cfg);
            sys.load(&program).unwrap();
            sys.push_to_mram(0, &refs);
            prices.push(sys.timeline().to_dpu_ns);
        }
        assert_eq!(prices[0], prices[1]);
        assert_eq!(prices[0], prices[2]);
    }

    #[test]
    #[should_panic(expected = "invalid channel config")]
    fn bad_bandwidth_config_is_rejected_at_allocation() {
        let bad = TransferConfig { to_dpu_gbps: f64::NAN, ..TransferConfig::paper() };
        let _ = PimSystem::new(1, DpuConfig::paper_baseline(1), bad);
    }

    #[test]
    fn launch_all_chunks_dpus_over_bounded_workers() {
        // More DPUs than typical core counts, and a count that does not
        // divide evenly, to exercise the chunked worker path end-to-end.
        let n = 19u32;
        let program = sum_kernel(64);
        let mut sys = PimSystem::new(n, DpuConfig::paper_baseline(1), TransferConfig::paper());
        sys.load(&program).unwrap();
        let chunks: Vec<Vec<u8>> = (0..n as i32)
            .map(|d| (0..64).flat_map(|i| (d * 100 + i).to_le_bytes()).collect())
            .collect();
        let refs: Vec<&[u8]> = chunks.iter().map(Vec::as_slice).collect();
        sys.push_to_mram(0, &refs);
        let report = sys.launch_all().unwrap();
        assert_eq!(report.per_dpu.len(), n as usize);
        for (d, bytes) in sys.pull_from_symbol("sum").iter().enumerate() {
            let got = i32::from_le_bytes(bytes.as_slice().try_into().unwrap());
            let expect: i32 = (0..64).map(|i| d as i32 * 100 + i).sum();
            assert_eq!(got, expect, "dpu {d} result must land at index {d}");
        }
    }
}
