//! # pim-host
//!
//! The host-side runtime of the simulation framework: allocation of DPU
//! sets, program loading, CPU↔DPU data transfers, and synchronous kernel
//! launches — the simulator counterpart of the UPMEM host API the paper
//! walks through in Fig 2(a) (`dpu_alloc`, `dpu_load`, `dpu_push_xfer`,
//! `dpu_launch`).
//!
//! Transfers are modelled exactly as the paper models them (§III-A): a
//! fixed-bandwidth channel per direction, with the asymmetric constants of
//! Table I — 0.296 GB/s per DPU for CPU→DPU (asynchronous AVX writes) and
//! 0.063 GB/s per DPU for CPU←DPU (synchronous AVX reads). Parallel
//! (`push`) transfers to many DPUs take the time of the largest per-DPU
//! buffer; the per-launch [`ExecutionTimeline`] accumulates transfer and
//! kernel phases for the strong-scaling breakdowns of Fig 10.
//!
//! On top of that v1 pipe sits the **channel model v2** ([`ChannelConfig`]
//! / [`ChannelMode`] / [`Channel`]): per-rank parallel channels, broadcast
//! writes that serve a whole rank at once, and asynchronous CPU→DPU pushes
//! that overlap kernel execution with completion barriers at pull
//! boundaries — the software transfer tricks the pathfinding literature
//! shows recover most of the channel's loss. The legacy
//! [`ChannelMode::Blocking`] mode (the default, and what a bare
//! [`TransferConfig`] converts into) reproduces the v1 numbers
//! byte-for-byte.
//!
//! # Example
//!
//! ```
//! use pim_asm::assemble;
//! use pim_dpu::DpuConfig;
//! use pim_host::{PimSystem, TransferConfig};
//!
//! let program = assemble(".text\n movi r0, 1\n stop\n").unwrap();
//! let mut sys = PimSystem::new(4, DpuConfig::paper_baseline(1), TransferConfig::paper());
//! sys.load(&program).unwrap();
//! let report = sys.launch_all().unwrap();
//! assert_eq!(report.per_dpu.len(), 4);
//! assert!(sys.timeline().kernel_ns > 0.0);
//! ```

pub mod system;
pub mod xfer;

pub use system::{ExecutionTimeline, LaunchReport, PimSystem};
pub use xfer::{
    Channel, ChannelConfig, ChannelError, ChannelMode, TransferConfig, DEFAULT_RANK_DPUS,
};
