//! Structured cycle-level tracing for the PIM simulator.
//!
//! The simulator cores (`pim-dpu`, `pim-dram`, `pim-host`) emit
//! [`TraceEvent`]s into a [`TraceSink`]. Three sinks are provided:
//!
//! * [`NullSink`] — the zero-cost default. `enabled()` returns `false` and
//!   the hot loops are generic over the sink, so with `NullSink` the event
//!   construction is dead code and the pipeline is unchanged.
//! * [`RingSink`] — a bounded per-DPU ring buffer that keeps the most
//!   recent events and counts how many were dropped.
//! * [`MetricsSink`] — a metrics registry folding events into named
//!   counters (instructions retired, stall cycles by cause, DMA traffic,
//!   barrier activity, DRAM row behaviour, host transfer volume).
//!
//! A whole simulated system's trace is a [`SystemTrace`]: the host-side
//! transfer events plus one [`DpuTrace`] per DPU. The Chrome trace-event
//! exporter that turns a `SystemTrace` into a Perfetto-loadable JSON file
//! lives in `pimulator::trace` (it needs the JSON emitter, which would be
//! a dependency cycle from here).

use std::collections::{BTreeMap, VecDeque};

use pim_isa::InstrClass;

/// Why the issue stage spent a cycle without retiring an instruction.
///
/// Mirrors the paper's Fig 6 cycle-breakdown categories: waiting on MRAM
/// (DMA in flight and nothing else runnable), waiting on the revolver
/// (tasklets exist but none is far enough around the pipeline), or blocked
/// by the even/odd register-file port conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// All runnable tasklets are blocked on MRAM DMA.
    Memory,
    /// Runnable tasklets exist but the revolver gap blocks issue.
    Revolver,
    /// The even/odd register-file port conflict blocked issue.
    RegisterFile,
}

impl StallCause {
    /// All causes, in reporting order.
    pub const ALL: [StallCause; 3] =
        [StallCause::Memory, StallCause::Revolver, StallCause::RegisterFile];

    /// Short label used in reports and trace tracks.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StallCause::Memory => "memory",
            StallCause::Revolver => "revolver",
            StallCause::RegisterFile => "rf",
        }
    }
}

/// One structured simulation event.
///
/// DPU-side events carry the core-clock `cycle` they happened on; host
/// transfer events live on the wall-clock timeline in nanoseconds. In
/// SIMT mode the `tasklet` of DMA events is the issuing *warp* index
/// (coalesced requests belong to the warp, not a single lane).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// An instruction left the pipeline.
    InstrRetire {
        /// Core cycle of retirement.
        cycle: u64,
        /// Retiring tasklet (SIMT: lane) id.
        tasklet: u32,
        /// Program counter, in instruction slots.
        pc: u32,
        /// Instruction-mix class.
        class: InstrClass,
    },
    /// The issue stage spent `cycles` consecutive cycles stalled.
    Stall {
        /// First stalled core cycle.
        cycle: u64,
        /// Length of the stalled span, in cycles.
        cycles: u64,
        /// Dominant cause of the stall.
        cause: StallCause,
    },
    /// A WRAM↔MRAM DMA request was issued.
    DmaBegin {
        /// Core cycle of issue.
        cycle: u64,
        /// Issuing tasklet (SIMT: warp) id.
        tasklet: u32,
        /// MRAM byte address of the transfer.
        mram: u32,
        /// Transfer length in bytes.
        bytes: u32,
        /// `true` for WRAM→MRAM writes.
        write: bool,
    },
    /// A previously issued DMA request completed.
    DmaEnd {
        /// Core cycle of completion.
        cycle: u64,
        /// Tasklet (SIMT: warp) id whose request finished.
        tasklet: u32,
    },
    /// An `acquire` on an atomic bit retired.
    BarrierAcquire {
        /// Core cycle of the attempt.
        cycle: u64,
        /// Attempting tasklet id.
        tasklet: u32,
        /// Atomic bit index.
        bit: u32,
        /// `false` when the bit was held and the tasklet will retry.
        acquired: bool,
    },
    /// A `release` of an atomic bit retired.
    BarrierRelease {
        /// Core cycle of the release.
        cycle: u64,
        /// Releasing tasklet id.
        tasklet: u32,
        /// Atomic bit index.
        bit: u32,
    },
    /// The DRAM bank activated a row (`ACT`).
    RowActivate {
        /// Core cycle of the activate.
        cycle: u64,
        /// Row index.
        row: u32,
    },
    /// The DRAM bank precharged the open row (`PRE`).
    RowPrecharge {
        /// Core cycle of the precharge.
        cycle: u64,
        /// Row index being closed.
        row: u32,
    },
    /// A host→DPU transfer was charged to the timeline.
    HostPush {
        /// Timeline position when the transfer started, in ns.
        at_ns: f64,
        /// Transfer duration in ns.
        ns: f64,
        /// Bytes moved (max per DPU for parallel transfers).
        bytes: u64,
    },
    /// A DPU→host transfer was charged to the timeline.
    HostPull {
        /// Timeline position when the transfer started, in ns.
        at_ns: f64,
        /// Transfer duration in ns.
        ns: f64,
        /// Bytes moved (max per DPU for parallel transfers).
        bytes: u64,
    },
}

/// Receives [`TraceEvent`]s from the simulator cores.
///
/// Hot loops are generic over the sink and gate event *construction* on
/// [`TraceSink::enabled`], so a sink whose `enabled` is a constant `false`
/// (like [`NullSink`]) compiles to the untraced pipeline.
pub trait TraceSink {
    /// Whether this sink wants events at all. Constant per sink type.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn emit(&mut self, event: TraceEvent);
}

/// The zero-cost "tracing off" sink.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn emit(&mut self, _event: TraceEvent) {}
}

/// The drained contents of one DPU's ring buffer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DpuTrace {
    /// Retained events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events discarded because the ring was full.
    pub dropped: u64,
}

/// A bounded ring buffer keeping the most recent events.
///
/// When full, the oldest event is evicted and counted in
/// [`RingSink::dropped`] — the tail of a run is usually the interesting
/// part (the steady state plus the finish), and a hard bound keeps memory
/// per DPU predictable.
#[derive(Debug, Clone, PartialEq)]
pub struct RingSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        RingSink { capacity, events: VecDeque::with_capacity(capacity.min(4096)), dropped: 0 }
    }

    /// The bound this ring was created with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Retained event count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the ring into a [`DpuTrace`], resetting the drop counter.
    pub fn take(&mut self) -> DpuTrace {
        DpuTrace {
            events: std::mem::take(&mut self.events).into(),
            dropped: std::mem::take(&mut self.dropped),
        }
    }
}

impl TraceSink for RingSink {
    fn emit(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

/// A metrics registry: folds events into named counters.
///
/// Counter names are stable strings (`instr_retired`, `stall_*_cycles`,
/// `dma_*`, `barrier_*`, `dram_row_*`, `host_*`) and iterate in sorted
/// order, so reports built from a `MetricsSink` are deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSink {
    counters: BTreeMap<&'static str, u64>,
}

impl MetricsSink {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsSink::default()
    }

    fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Increments a named counter directly, for subsystems (like the
    /// serving runtime) whose bookkeeping is not expressed as
    /// [`TraceEvent`]s but should land in the same deterministic registry.
    pub fn incr(&mut self, name: &'static str, n: u64) {
        self.add(name, n);
    }

    /// Reads one counter (0 if never incremented).
    #[must_use]
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    #[must_use]
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        self.counters.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Folds a batch of already-collected events into the registry.
    pub fn absorb<'a>(&mut self, events: impl IntoIterator<Item = &'a TraceEvent>) {
        for ev in events {
            self.emit(*ev);
        }
    }
}

impl TraceSink for MetricsSink {
    fn emit(&mut self, event: TraceEvent) {
        match event {
            TraceEvent::InstrRetire { .. } => self.add("instr_retired", 1),
            TraceEvent::Stall { cycles, cause, .. } => self.add(
                match cause {
                    StallCause::Memory => "stall_memory_cycles",
                    StallCause::Revolver => "stall_revolver_cycles",
                    StallCause::RegisterFile => "stall_rf_cycles",
                },
                cycles,
            ),
            TraceEvent::DmaBegin { bytes, write, .. } => {
                self.add("dma_requests", 1);
                self.add(
                    if write { "dma_bytes_written" } else { "dma_bytes_read" },
                    u64::from(bytes),
                );
            }
            TraceEvent::DmaEnd { .. } => self.add("dma_completions", 1),
            TraceEvent::BarrierAcquire { acquired, .. } => {
                self.add(if acquired { "barrier_acquires" } else { "barrier_retries" }, 1);
            }
            TraceEvent::BarrierRelease { .. } => self.add("barrier_releases", 1),
            TraceEvent::RowActivate { .. } => self.add("dram_row_activates", 1),
            TraceEvent::RowPrecharge { .. } => self.add("dram_row_precharges", 1),
            TraceEvent::HostPush { bytes, .. } => {
                self.add("host_push_transfers", 1);
                self.add("host_push_bytes", bytes);
            }
            TraceEvent::HostPull { bytes, .. } => {
                self.add("host_pull_transfers", 1);
                self.add("host_pull_bytes", bytes);
            }
        }
    }
}

/// A whole system's trace: host transfer events plus one ring's worth of
/// events per DPU, stamped with the core frequency so cycle timestamps can
/// be converted to wall time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SystemTrace {
    /// DPU core frequency, for cycle→time conversion.
    pub freq_mhz: u32,
    /// Host-side push/pull transfer events, in timeline order.
    pub host: Vec<TraceEvent>,
    /// Per-DPU retained events.
    pub per_dpu: Vec<DpuTrace>,
}

impl SystemTrace {
    /// Total retained events across host and DPUs.
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.host.len() + self.per_dpu.iter().map(|d| d.events.len()).sum::<usize>()
    }

    /// Total events evicted from the per-DPU rings.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.per_dpu.iter().map(|d| d.dropped).sum()
    }

    /// Folds every retained event into a fresh metrics registry.
    #[must_use]
    pub fn metrics(&self) -> MetricsSink {
        let mut m = MetricsSink::new();
        m.absorb(&self.host);
        for d in &self.per_dpu {
            m.absorb(&d.events);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn retire(cycle: u64) -> TraceEvent {
        TraceEvent::InstrRetire { cycle, tasklet: 0, pc: 0, class: InstrClass::Arithmetic }
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.emit(retire(1)); // no-op
    }

    #[test]
    fn ring_keeps_the_most_recent_events_and_counts_drops() {
        let mut r = RingSink::new(3);
        assert!(r.enabled());
        for c in 0..5 {
            r.emit(retire(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let t = r.take();
        assert_eq!(
            t.events
                .iter()
                .map(|e| match e {
                    TraceEvent::InstrRetire { cycle, .. } => *cycle,
                    _ => unreachable!(),
                })
                .collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(t.dropped, 2);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut r = RingSink::new(0);
        r.emit(retire(0));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn metrics_fold_by_kind_and_cause() {
        let mut m = MetricsSink::new();
        m.emit(retire(0));
        m.emit(retire(1));
        m.emit(TraceEvent::Stall { cycle: 2, cycles: 7, cause: StallCause::Memory });
        m.emit(TraceEvent::Stall { cycle: 9, cycles: 1, cause: StallCause::RegisterFile });
        m.emit(TraceEvent::DmaBegin { cycle: 3, tasklet: 1, mram: 64, bytes: 256, write: false });
        m.emit(TraceEvent::DmaEnd { cycle: 40, tasklet: 1 });
        m.emit(TraceEvent::BarrierAcquire { cycle: 5, tasklet: 2, bit: 0, acquired: false });
        m.emit(TraceEvent::BarrierAcquire { cycle: 6, tasklet: 2, bit: 0, acquired: true });
        m.emit(TraceEvent::BarrierRelease { cycle: 7, tasklet: 2, bit: 0 });
        m.emit(TraceEvent::RowActivate { cycle: 8, row: 3 });
        m.emit(TraceEvent::RowPrecharge { cycle: 9, row: 3 });
        m.emit(TraceEvent::HostPush { at_ns: 0.0, ns: 10.0, bytes: 1024 });
        m.emit(TraceEvent::HostPull { at_ns: 20.0, ns: 5.0, bytes: 512 });
        assert_eq!(m.get("instr_retired"), 2);
        assert_eq!(m.get("stall_memory_cycles"), 7);
        assert_eq!(m.get("stall_rf_cycles"), 1);
        assert_eq!(m.get("stall_revolver_cycles"), 0);
        assert_eq!(m.get("dma_requests"), 1);
        assert_eq!(m.get("dma_bytes_read"), 256);
        assert_eq!(m.get("dma_completions"), 1);
        assert_eq!(m.get("barrier_retries"), 1);
        assert_eq!(m.get("barrier_acquires"), 1);
        assert_eq!(m.get("barrier_releases"), 1);
        assert_eq!(m.get("dram_row_activates"), 1);
        assert_eq!(m.get("dram_row_precharges"), 1);
        assert_eq!(m.get("host_push_bytes"), 1024);
        assert_eq!(m.get("host_pull_bytes"), 512);
        // Sorted, deterministic iteration.
        let names: Vec<_> = m.counters().iter().map(|(k, _)| *k).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn system_trace_aggregates() {
        let mut ring = RingSink::new(8);
        ring.emit(retire(0));
        ring.emit(TraceEvent::DmaBegin { cycle: 1, tasklet: 0, mram: 0, bytes: 64, write: true });
        let st = SystemTrace {
            freq_mhz: 350,
            host: vec![TraceEvent::HostPush { at_ns: 0.0, ns: 1.0, bytes: 64 }],
            per_dpu: vec![ring.take(), DpuTrace::default()],
        };
        assert_eq!(st.event_count(), 3);
        assert_eq!(st.dropped(), 0);
        let m = st.metrics();
        assert_eq!(m.get("instr_retired"), 1);
        assert_eq!(m.get("dma_bytes_written"), 64);
        assert_eq!(m.get("host_push_transfers"), 1);
    }
}
