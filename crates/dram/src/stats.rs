//! DRAM access statistics.

/// Counters accumulated by a [`crate::DramBank`] over a simulation.
///
/// `bytes_read` feeds the paper's Figure 16 ("bytes read from DRAM") and the
/// memory-bandwidth-utilization axis of Figure 5.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Number of read bursts serviced.
    pub reads: u64,
    /// Number of write bursts serviced.
    pub writes: u64,
    /// Bursts that hit the open row.
    pub row_hits: u64,
    /// Bursts that required activating a closed bank.
    pub row_opens: u64,
    /// Bursts that conflicted with a different open row (precharge + activate).
    pub row_conflicts: u64,
    /// Total bytes read from the bank.
    pub bytes_read: u64,
    /// Total bytes written to the bank.
    pub bytes_written: u64,
    /// Sum over serviced bursts of (service completion − arrival), in DRAM
    /// cycles; divide by `reads + writes` for mean access latency.
    pub total_latency: u64,
}

impl DramStats {
    /// Accumulates another run's counters into this one.
    pub fn merge(&mut self, other: &DramStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.row_hits += other.row_hits;
        self.row_opens += other.row_opens;
        self.row_conflicts += other.row_conflicts;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.total_latency += other.total_latency;
    }

    /// Total bursts serviced.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Row-hit rate over all serviced bursts, or 0.0 when idle.
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses() as f64
        }
    }

    /// Mean access latency in DRAM cycles, or 0.0 when idle.
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.accesses() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates_handle_idle_bank() {
        let s = DramStats::default();
        assert_eq!(s.accesses(), 0);
        assert_eq!(s.row_hit_rate(), 0.0);
        assert_eq!(s.mean_latency(), 0.0);
    }

    #[test]
    fn derived_rates() {
        let s = DramStats {
            reads: 3,
            writes: 1,
            row_hits: 2,
            total_latency: 80,
            ..DramStats::default()
        };
        assert_eq!(s.accesses(), 4);
        assert!((s.row_hit_rate() - 0.5).abs() < f64::EPSILON);
        assert!((s.mean_latency() - 20.0).abs() < f64::EPSILON);
    }
}
