//! # pim-dram
//!
//! A cycle-level model of the single DDR4 DRAM bank that backs a DPU's MRAM.
//!
//! The paper (§III-A) models the DRAM subsystem after GPGPU-Sim's cycle-level
//! DRAM simulator: a bank state machine with the DDR4-2400 timing parameters
//! of Table I (`tRCD`, `tRAS`, `tRP`, `tCL`, `tBL`), a 1 KB row buffer, and
//! **FR-FCFS** (first-row, first-come-first-serve) scheduling of memory
//! transactions. This crate reproduces that model.
//!
//! The bank operates in its own clock domain (DRAM I/O clock, 1200 MHz for
//! DDR4-2400). The DPU-side DMA engine converts core cycles to DRAM cycles
//! and splits DMA requests into fixed-size bursts before enqueueing them
//! here. The **frequency-scaling knob** used by the paper's SIMT
//! (Fig 11, `+4x/16x`) and MRAM-bandwidth (Fig 13, `×1–×4`) studies is the
//! clock-domain ratio itself: scaling DRAM frequency shrinks every timing
//! parameter in core-cycle terms.
//!
//! # Example
//!
//! ```
//! use pim_dram::{Access, DramBank, DramConfig};
//!
//! let mut bank = DramBank::new(DramConfig::ddr4_2400());
//! let id = bank.enqueue(Access::read(0x1000, 64), 0);
//! // Tick the bank forward; the access completes after tRCD + tCL + tBL.
//! let mut done = Vec::new();
//! bank.advance_to(1000, &mut done);
//! assert_eq!(done, vec![id]);
//! assert_eq!(bank.stats().reads, 1);
//! ```

pub mod bank;
pub mod config;
pub mod stats;

pub use bank::{Access, AccessId, DramBank, RowEvent, RowEventKind};
pub use config::DramConfig;
pub use stats::DramStats;
