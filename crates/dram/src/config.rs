//! DRAM timing and geometry configuration.

/// Timing and geometry parameters of the per-DPU DRAM bank.
///
/// All timing parameters are expressed in DRAM I/O-clock cycles, matching the
/// paper's Table I (`tRCD, tRAS, tRP, tCL, tBL = 16, 39, 16, 16, 4` for
/// DDR4-2400).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// DRAM I/O clock frequency in MHz (1200 for DDR4-2400).
    pub freq_mhz: f64,
    /// ACT-to-CAS delay, in DRAM cycles.
    pub t_rcd: u64,
    /// Minimum ACT-to-PRE delay (row must stay open this long), in DRAM cycles.
    pub t_ras: u64,
    /// Precharge latency, in DRAM cycles.
    pub t_rp: u64,
    /// CAS (column access) latency, in DRAM cycles.
    pub t_cl: u64,
    /// Burst length on the data bus, in DRAM cycles.
    pub t_bl: u64,
    /// Minimum CAS-to-CAS spacing for row-hit streaming, in DRAM cycles.
    pub t_ccd: u64,
    /// Row-buffer size in bytes (Table I: 1 KB).
    pub row_bytes: u32,
    /// Bytes transferred by a single burst (one CAS command).
    ///
    /// The DPU's DMA engine splits transfers into bursts of this size. The
    /// bank-level bandwidth this yields is deliberately much higher than the
    /// DMA-engine interface bandwidth — the paper notes (§V-B) that the
    /// 600–700 MB/s MRAM bandwidth "is not a fundamental constraint because
    /// the maximum memory bandwidth … at the bank level is much higher".
    pub burst_bytes: u32,
    /// Maximum age (in DRAM cycles) a request may wait before FR-FCFS
    /// row-hit prioritization is bypassed in its favour, preventing
    /// starvation of row-miss requests under a row-hit stream.
    pub starvation_cap: u64,
}

impl DramConfig {
    /// The paper's Table I configuration: DDR4-2400 timings with a 1 KB row
    /// buffer.
    #[must_use]
    pub fn ddr4_2400() -> Self {
        DramConfig {
            freq_mhz: 1200.0,
            t_rcd: 16,
            t_ras: 39,
            t_rp: 16,
            t_cl: 16,
            t_bl: 4,
            t_ccd: 4,
            row_bytes: 1024,
            burst_bytes: 64,
            starvation_cap: 2048,
        }
    }

    /// Returns this configuration with the DRAM operating frequency scaled
    /// by `factor`, the mechanism behind the paper's `SIMT+AC+4x/16x`
    /// (Fig 11) and MRAM-bandwidth-scaling (Fig 13) design points.
    ///
    /// Timing parameters are specified in DRAM cycles and therefore stay
    /// fixed; a higher clock makes every access proportionally faster in
    /// wall-clock (and core-cycle) terms.
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "frequency scale factor must be positive");
        self.freq_mhz *= factor;
        self
    }

    /// The row index covering the given MRAM byte address.
    #[must_use]
    pub fn row_of(&self, addr: u32) -> u32 {
        addr / self.row_bytes
    }

    /// Peak data-bus bandwidth of the bank in bytes per DRAM cycle
    /// (one burst every `t_ccd` cycles under row-hit streaming).
    #[must_use]
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        f64::from(self.burst_bytes) / self.t_ccd as f64
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::ddr4_2400()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_values() {
        let c = DramConfig::ddr4_2400();
        assert_eq!((c.t_rcd, c.t_ras, c.t_rp, c.t_cl, c.t_bl), (16, 39, 16, 16, 4));
        assert_eq!(c.row_bytes, 1024);
        assert!((c.freq_mhz - 1200.0).abs() < f64::EPSILON);
    }

    #[test]
    fn scaling_multiplies_frequency_only() {
        let base = DramConfig::ddr4_2400();
        let fast = base.scaled(4.0);
        assert!((fast.freq_mhz - 4800.0).abs() < f64::EPSILON);
        assert_eq!(fast.t_rcd, base.t_rcd);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        let _ = DramConfig::ddr4_2400().scaled(0.0);
    }

    #[test]
    fn row_mapping() {
        let c = DramConfig::ddr4_2400();
        assert_eq!(c.row_of(0), 0);
        assert_eq!(c.row_of(1023), 0);
        assert_eq!(c.row_of(1024), 1);
    }

    #[test]
    fn peak_bandwidth() {
        let c = DramConfig::ddr4_2400();
        // 64 B / 4 cycles = 16 B/cycle at 1200 MHz ≈ 19.2 GB/s bank-level.
        assert!((c.peak_bytes_per_cycle() - 16.0).abs() < f64::EPSILON);
    }
}
