//! The DRAM bank state machine with FR-FCFS scheduling.

use std::collections::VecDeque;

use crate::config::DramConfig;
use crate::stats::DramStats;

/// Identifier of an enqueued access, returned by [`DramBank::enqueue`] and
/// reported back on completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AccessId(pub u64);

/// A single bank access (at most one burst's worth of data within one row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// MRAM byte address of the first byte accessed.
    pub addr: u32,
    /// Number of bytes accessed (`1..=burst_bytes`, within a single row).
    pub bytes: u32,
    /// `true` for writes, `false` for reads.
    pub write: bool,
}

impl Access {
    /// A read access.
    #[must_use]
    pub fn read(addr: u32, bytes: u32) -> Self {
        Access { addr, bytes, write: false }
    }

    /// A write access.
    #[must_use]
    pub fn write(addr: u32, bytes: u32) -> Self {
        Access { addr, bytes, write: true }
    }
}

/// Kind of row-buffer command recorded by [`DramBank`] event recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowEventKind {
    /// A row was activated (opened) into the row buffer.
    Activate,
    /// The open row was precharged (closed).
    Precharge,
}

/// A row-buffer command observed while event recording is enabled.
///
/// Times are in DRAM-clock cycles; the memory engine converts them to core
/// cycles before handing them to a trace sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowEvent {
    /// DRAM cycle at which the command issued.
    pub at: u64,
    /// The row involved.
    pub row: u32,
    /// Activate or precharge.
    pub kind: RowEventKind,
}

#[derive(Debug, Clone, Copy)]
struct Queued {
    id: AccessId,
    access: Access,
    arrival: u64,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    id: AccessId,
    finish: u64,
}

/// A cycle-level DRAM bank.
///
/// All times are in DRAM-clock cycles. The caller drives the bank with
/// [`DramBank::advance_to`] and may fast-forward idle periods using
/// [`DramBank::next_event`].
///
/// Scheduling is FR-FCFS (paper Table I): among arrived requests the oldest
/// **row-hit** request is served first; if no request hits the open row, the
/// oldest request is served. A request older than
/// [`DramConfig::starvation_cap`] bypasses row-hit prioritization.
#[derive(Debug, Clone)]
pub struct DramBank {
    cfg: DramConfig,
    queue: VecDeque<Queued>,
    in_flight: Vec<InFlight>,
    open_row: Option<u32>,
    /// Earliest cycle the next bank command sequence may begin.
    next_start: u64,
    /// Cycle at which the currently open row was activated (for tRAS).
    act_cycle: u64,
    /// If the scheduler stopped because the next request couldn't start yet,
    /// the cycle at which it can.
    blocked_until: Option<u64>,
    next_id: u64,
    stats: DramStats,
    /// Row-buffer commands recorded while `record_events` is set.
    row_events: Vec<RowEvent>,
    record_events: bool,
}

impl DramBank {
    /// Creates an idle bank with the given configuration.
    #[must_use]
    pub fn new(cfg: DramConfig) -> Self {
        DramBank {
            cfg,
            queue: VecDeque::new(),
            in_flight: Vec::new(),
            open_row: None,
            next_start: 0,
            act_cycle: 0,
            blocked_until: None,
            next_id: 0,
            stats: DramStats::default(),
            row_events: Vec::new(),
            record_events: false,
        }
    }

    /// Enables or disables row-buffer event recording. Off by default; the
    /// bank buffers nothing unless a tracer asks for it.
    pub fn set_event_recording(&mut self, on: bool) {
        self.record_events = on;
        if !on {
            self.row_events.clear();
        }
    }

    /// Takes the row-buffer events recorded since the last drain.
    pub fn drain_row_events(&mut self) -> Vec<RowEvent> {
        std::mem::take(&mut self.row_events)
    }

    /// The bank's configuration.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Whether the bank has no queued or in-flight accesses.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.in_flight.is_empty()
    }

    /// Number of queued (not yet started) accesses.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues an access arriving at DRAM cycle `now`.
    ///
    /// # Panics
    ///
    /// Panics if the access is empty, larger than one burst, or crosses a
    /// row boundary (the DMA engine splits transfers so this cannot happen).
    pub fn enqueue(&mut self, access: Access, now: u64) -> AccessId {
        assert!(access.bytes > 0, "empty DRAM access");
        assert!(
            access.bytes <= self.cfg.burst_bytes,
            "access of {} bytes exceeds burst size {}",
            access.bytes,
            self.cfg.burst_bytes
        );
        assert_eq!(
            self.cfg.row_of(access.addr),
            self.cfg.row_of(access.addr + access.bytes - 1),
            "access crosses a row boundary"
        );
        let id = AccessId(self.next_id);
        self.next_id += 1;
        self.queue.push_back(Queued { id, access, arrival: now });
        self.blocked_until = None;
        id
    }

    /// Advances the bank to DRAM cycle `now`, starting every request that can
    /// start and pushing the ids of accesses whose data completed by `now`
    /// into `completed` (in completion order).
    ///
    /// Scheduling decisions are made at *decision time* — the moment the bank
    /// becomes free and at least one request has arrived — so only requests
    /// already queued at that moment participate in FR-FCFS arbitration,
    /// regardless of how far `now` jumps ahead.
    pub fn advance_to(&mut self, now: u64, completed: &mut Vec<AccessId>) {
        self.blocked_until = None;
        while !self.queue.is_empty() {
            let min_arrival = self.queue.iter().map(|q| q.arrival).min().expect("queue non-empty");
            let decision = self.next_start.max(min_arrival);
            if decision > now {
                self.blocked_until = Some(decision);
                break;
            }
            let pick = self.pick_at(decision).expect("an arrived request exists");
            let q = self.queue.remove(pick).expect("picked index valid");
            let finish = self.service(q, decision);
            self.in_flight.push(InFlight { id: q.id, finish });
        }
        // Retire accesses whose data is complete. After the sort the
        // finished prefix is contiguous, so a partition point + drain
        // retires in completion order without a temporary vector.
        self.in_flight.sort_by_key(|f| f.finish);
        let done = self.in_flight.partition_point(|f| f.finish <= now);
        completed.extend(self.in_flight.drain(..done).map(|f| f.id));
    }

    /// The next DRAM cycle at which calling [`DramBank::advance_to`] could
    /// make progress (a completion retires or a blocked request can start),
    /// or `None` if the bank is idle.
    ///
    /// Valid after an [`DramBank::advance_to`] call; enqueueing invalidates
    /// the hint conservatively (the caller should re-advance).
    #[must_use]
    pub fn next_event(&self) -> Option<u64> {
        let mut next = self.in_flight.iter().map(|f| f.finish).min();
        if let Some(b) = self.blocked_until {
            next = Some(next.map_or(b, |n| n.min(b)));
        }
        if next.is_none() && !self.queue.is_empty() {
            // advance_to has not run since the last enqueue; the caller
            // should re-advance immediately.
            next = Some(self.next_start);
        }
        next
    }

    /// FR-FCFS pick among requests that have arrived by `decision` time: the
    /// oldest row-hit request, unless the oldest overall request has waited
    /// past the starvation cap, in which case it wins. Returns a queue index.
    fn pick_at(&self, decision: u64) -> Option<usize> {
        let arrived = |q: &Queued| q.arrival <= decision;
        let oldest = self
            .queue
            .iter()
            .enumerate()
            .filter(|(_, q)| arrived(q))
            .min_by_key(|(_, q)| q.arrival)?;
        if decision.saturating_sub(oldest.1.arrival) > self.cfg.starvation_cap {
            return Some(oldest.0);
        }
        if let Some(open) = self.open_row {
            let hit = self
                .queue
                .iter()
                .enumerate()
                .filter(|(_, q)| arrived(q) && self.cfg.row_of(q.access.addr) == open)
                .min_by_key(|(_, q)| q.arrival);
            if let Some((i, _)) = hit {
                return Some(i);
            }
        }
        Some(oldest.0)
    }

    /// Runs the bank state machine for one access starting at `start`;
    /// returns the cycle its data transfer completes.
    fn service(&mut self, q: Queued, start: u64) -> u64 {
        let cfg = self.cfg;
        let row = cfg.row_of(q.access.addr);
        let cas_at = match self.open_row {
            Some(open) if open == row => {
                self.stats.row_hits += 1;
                start
            }
            Some(open) => {
                self.stats.row_conflicts += 1;
                // Precharge may not issue before tRAS has elapsed since ACT.
                let pre_at = start.max(self.act_cycle + cfg.t_ras);
                let act_at = pre_at + cfg.t_rp;
                if self.record_events {
                    self.row_events.push(RowEvent {
                        at: pre_at,
                        row: open,
                        kind: RowEventKind::Precharge,
                    });
                    self.row_events.push(RowEvent {
                        at: act_at,
                        row,
                        kind: RowEventKind::Activate,
                    });
                }
                self.act_cycle = act_at;
                self.open_row = Some(row);
                act_at + cfg.t_rcd
            }
            None => {
                self.stats.row_opens += 1;
                if self.record_events {
                    self.row_events.push(RowEvent { at: start, row, kind: RowEventKind::Activate });
                }
                self.act_cycle = start;
                self.open_row = Some(row);
                start + cfg.t_rcd
            }
        };
        let finish = cas_at + cfg.t_cl + cfg.t_bl;
        self.next_start = cas_at + cfg.t_ccd;
        if q.access.write {
            self.stats.writes += 1;
            self.stats.bytes_written += u64::from(q.access.bytes);
        } else {
            self.stats.reads += 1;
            self.stats.bytes_read += u64::from(q.access.bytes);
        }
        self.stats.total_latency += finish - q.arrival;
        finish
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(bank: &mut DramBank, now: u64) -> Vec<AccessId> {
        let mut out = Vec::new();
        bank.advance_to(now, &mut out);
        out
    }

    #[test]
    fn cold_access_takes_rcd_cl_bl() {
        let cfg = DramConfig::ddr4_2400();
        let mut bank = DramBank::new(cfg);
        let id = bank.enqueue(Access::read(0, 64), 0);
        let expect = cfg.t_rcd + cfg.t_cl + cfg.t_bl; // 36
        assert!(drain(&mut bank, expect - 1).is_empty());
        assert_eq!(drain(&mut bank, expect), vec![id]);
        assert_eq!(bank.stats().row_opens, 1);
        assert_eq!(bank.stats().bytes_read, 64);
    }

    #[test]
    fn row_hit_streams_at_ccd() {
        let cfg = DramConfig::ddr4_2400();
        let mut bank = DramBank::new(cfg);
        // 8 bursts in the same row, all arriving at 0.
        let ids: Vec<_> = (0..8).map(|i| bank.enqueue(Access::read(i * 64, 64), 0)).collect();
        let done = drain(&mut bank, 10_000);
        assert_eq!(done, ids);
        assert_eq!(bank.stats().row_opens, 1);
        assert_eq!(bank.stats().row_hits, 7);
        // Completion of last burst: tRCD + 7*tCCD + tCL + tBL.
        let last_finish = cfg.t_rcd + 7 * cfg.t_ccd + cfg.t_cl + cfg.t_bl;
        assert!(drain(&mut DramBank::new(cfg), 0).is_empty());
        let mut bank2 = DramBank::new(cfg);
        let ids2: Vec<_> = (0..8).map(|i| bank2.enqueue(Access::read(i * 64, 64), 0)).collect();
        assert!(drain(&mut bank2, last_finish - 1).len() < ids2.len());
        assert_eq!(drain(&mut bank2, last_finish).len(), 1);
    }

    #[test]
    fn row_conflict_pays_ras_rp_rcd() {
        let cfg = DramConfig::ddr4_2400();
        let mut bank = DramBank::new(cfg);
        let a = bank.enqueue(Access::read(0, 64), 0);
        // Different row.
        let b = bank.enqueue(Access::read(4096, 64), 0);
        let done = drain(&mut bank, 100_000);
        assert_eq!(done, vec![a, b]);
        assert_eq!(bank.stats().row_conflicts, 1);
        // b: precharge waits for tRAS after the first ACT (cycle 0), then
        // tRP + tRCD + tCL + tBL.
        let expect_b = cfg.t_ras + cfg.t_rp + cfg.t_rcd + cfg.t_cl + cfg.t_bl;
        let mut bank2 = DramBank::new(cfg);
        bank2.enqueue(Access::read(0, 64), 0);
        let b2 = bank2.enqueue(Access::read(4096, 64), 0);
        assert!(!drain(&mut bank2, expect_b - 1).contains(&b2));
        assert!(drain(&mut bank2, expect_b).contains(&b2));
    }

    #[test]
    fn frfcfs_prioritizes_row_hits() {
        let cfg = DramConfig::ddr4_2400();
        let mut bank = DramBank::new(cfg);
        // Open row 0.
        let first = bank.enqueue(Access::read(0, 64), 0);
        let mut done = Vec::new();
        bank.advance_to(cfg.t_rcd + cfg.t_cl + cfg.t_bl, &mut done);
        assert_eq!(done, vec![first]);
        // A row-miss and a row-hit request are both queued when the bank
        // next arbitrates (same arrival cycle, miss enqueued first): FR-FCFS
        // must serve the row hit first.
        let miss = bank.enqueue(Access::read(4096, 64), 40);
        let hit = bank.enqueue(Access::read(64, 64), 40);
        let order = drain(&mut bank, 100_000);
        assert_eq!(order, vec![hit, miss], "row hit must be served first");
    }

    #[test]
    fn starvation_cap_eventually_serves_misses() {
        let mut cfg = DramConfig::ddr4_2400();
        cfg.starvation_cap = 50;
        let mut bank = DramBank::new(cfg);
        bank.enqueue(Access::read(0, 64), 0);
        let mut done = Vec::new();
        bank.advance_to(36, &mut done);
        let miss = bank.enqueue(Access::read(4096, 64), 36);
        // A steady stream of row hits arrives; without the cap the miss
        // would starve.
        let mut t = 37;
        let mut served_miss_at = None;
        for i in 0..1000u32 {
            bank.enqueue(Access::read(64 + (i % 8) * 64, 64), t);
            let mut out = Vec::new();
            t += 4;
            bank.advance_to(t, &mut out);
            if out.contains(&miss) {
                served_miss_at = Some(t);
                break;
            }
        }
        assert!(served_miss_at.is_some(), "row-miss request starved despite starvation cap");
    }

    #[test]
    fn writes_counted_separately() {
        let mut bank = DramBank::new(DramConfig::ddr4_2400());
        bank.enqueue(Access::write(128, 32), 0);
        drain(&mut bank, 10_000);
        assert_eq!(bank.stats().writes, 1);
        assert_eq!(bank.stats().bytes_written, 32);
        assert_eq!(bank.stats().bytes_read, 0);
    }

    #[test]
    fn next_event_reports_completion_time() {
        let cfg = DramConfig::ddr4_2400();
        let mut bank = DramBank::new(cfg);
        bank.enqueue(Access::read(0, 64), 0);
        let mut out = Vec::new();
        bank.advance_to(0, &mut out);
        assert!(out.is_empty());
        assert_eq!(bank.next_event(), Some(cfg.t_rcd + cfg.t_cl + cfg.t_bl));
        bank.advance_to(cfg.t_rcd + cfg.t_cl + cfg.t_bl, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(bank.next_event(), None);
        assert!(bank.is_idle());
    }

    #[test]
    fn requests_arriving_later_wait_for_arrival() {
        let cfg = DramConfig::ddr4_2400();
        let mut bank = DramBank::new(cfg);
        let id = bank.enqueue(Access::read(0, 64), 100);
        assert!(drain(&mut bank, 99).is_empty());
        assert!(drain(&mut bank, 135).is_empty());
        assert_eq!(drain(&mut bank, 136), vec![id]);
    }

    #[test]
    #[should_panic(expected = "crosses a row boundary")]
    fn cross_row_access_panics() {
        let mut bank = DramBank::new(DramConfig::ddr4_2400());
        bank.enqueue(Access::read(1000, 64), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds burst size")]
    fn oversized_access_panics() {
        let mut bank = DramBank::new(DramConfig::ddr4_2400());
        bank.enqueue(Access::read(0, 128), 0);
    }
}
