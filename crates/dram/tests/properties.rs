//! Property tests for the DRAM bank model.

use pim_dram::{Access, DramBank, DramConfig};
use proptest::prelude::*;

proptest! {
    /// Every enqueued access eventually completes, exactly once.
    #[test]
    fn conservation(
        reqs in prop::collection::vec((0u32..1 << 20, 1u32..=64, any::<bool>(), 0u64..5000), 1..64)
    ) {
        let cfg = DramConfig::ddr4_2400();
        let mut bank = DramBank::new(cfg);
        let mut ids = Vec::new();
        let mut reqs = reqs;
        reqs.sort_by_key(|r| r.3);
        let mut done = Vec::new();
        for (addr, bytes, write, arrival) in reqs {
            // Clamp to one row.
            let addr = addr & !63;
            bank.advance_to(arrival, &mut done);
            let access = if write { Access::write(addr, bytes) } else { Access::read(addr, bytes) };
            ids.push(bank.enqueue(access, arrival));
        }
        // Drive to quiescence using next_event hints.
        let mut now = 5000;
        let mut guard = 0;
        while !bank.is_idle() {
            bank.advance_to(now, &mut done);
            if let Some(next) = bank.next_event() {
                now = now.max(next);
            }
            guard += 1;
            prop_assert!(guard < 100_000, "bank failed to quiesce");
        }
        let mut sorted = done.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), ids.len(), "every access completes exactly once");
    }

    /// Statistics are conserved: reads + writes equals enqueued accesses and
    /// byte counters match.
    #[test]
    fn stats_conservation(
        reqs in prop::collection::vec((0u32..1 << 16, any::<bool>()), 1..40)
    ) {
        let mut bank = DramBank::new(DramConfig::ddr4_2400());
        let mut done = Vec::new();
        let (mut rbytes, mut wbytes) = (0u64, 0u64);
        for (addr, write) in &reqs {
            let addr = addr & !63;
            let access = if *write {
                wbytes += 64;
                Access::write(addr, 64)
            } else {
                rbytes += 64;
                Access::read(addr, 64)
            };
            bank.enqueue(access, 0);
        }
        bank.advance_to(u64::MAX / 2, &mut done);
        prop_assert!(bank.is_idle());
        prop_assert_eq!(bank.stats().accesses(), reqs.len() as u64);
        prop_assert_eq!(bank.stats().bytes_read, rbytes);
        prop_assert_eq!(bank.stats().bytes_written, wbytes);
        prop_assert_eq!(
            bank.stats().row_hits + bank.stats().row_opens + bank.stats().row_conflicts,
            reqs.len() as u64
        );
    }

    /// Advancing in many small steps yields the same completion order as one
    /// big step (the model is advance-granularity independent).
    #[test]
    fn advance_granularity_independent(
        addrs in prop::collection::vec(0u32..1 << 18, 1..32),
        step in 1u64..97
    ) {
        let cfg = DramConfig::ddr4_2400();
        let horizon = 200_000u64;

        let mut big = DramBank::new(cfg);
        let mut big_done = Vec::new();
        for a in &addrs {
            big.enqueue(Access::read(a & !63, 64), 0);
        }
        big.advance_to(horizon, &mut big_done);

        let mut small = DramBank::new(cfg);
        let mut small_done = Vec::new();
        for a in &addrs {
            small.enqueue(Access::read(a & !63, 64), 0);
        }
        let mut t = 0;
        while t < horizon {
            t += step;
            small.advance_to(t.min(horizon), &mut small_done);
        }
        prop_assert_eq!(big_done, small_done);
    }
}
