//! Randomized property tests (seeded, dependency-free) for the DRAM bank
//! model.

use pim_dram::{Access, DramBank, DramConfig};
use pim_rng::StdRng;

/// Every enqueued access eventually completes, exactly once.
#[test]
fn conservation() {
    let mut rng = StdRng::seed_from_u64(0xD4A0_0001);
    for _case in 0..64 {
        let n = rng.gen_range(1usize..64);
        let mut reqs: Vec<(u32, u32, bool, u64)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0u32..1 << 20),
                    rng.gen_range(1u32..65),
                    rng.gen_bool(),
                    rng.gen_range(0u64..5000),
                )
            })
            .collect();
        let cfg = DramConfig::ddr4_2400();
        let mut bank = DramBank::new(cfg);
        let mut ids = Vec::new();
        reqs.sort_by_key(|r| r.3);
        let mut done = Vec::new();
        for (addr, bytes, write, arrival) in reqs {
            // Clamp to one row.
            let addr = addr & !63;
            bank.advance_to(arrival, &mut done);
            let access = if write { Access::write(addr, bytes) } else { Access::read(addr, bytes) };
            ids.push(bank.enqueue(access, arrival));
        }
        // Drive to quiescence using next_event hints.
        let mut now = 5000;
        let mut guard = 0;
        while !bank.is_idle() {
            bank.advance_to(now, &mut done);
            if let Some(next) = bank.next_event() {
                now = now.max(next);
            }
            guard += 1;
            assert!(guard < 100_000, "bank failed to quiesce");
        }
        let mut sorted = done.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "every access completes exactly once");
    }
}

/// Statistics are conserved: reads + writes equals enqueued accesses and
/// byte counters match.
#[test]
fn stats_conservation() {
    let mut rng = StdRng::seed_from_u64(0xD4A0_0002);
    for _case in 0..64 {
        let n = rng.gen_range(1usize..40);
        let reqs: Vec<(u32, bool)> =
            (0..n).map(|_| (rng.gen_range(0u32..1 << 16), rng.gen_bool())).collect();
        let mut bank = DramBank::new(DramConfig::ddr4_2400());
        let mut done = Vec::new();
        let (mut rbytes, mut wbytes) = (0u64, 0u64);
        for (addr, write) in &reqs {
            let addr = addr & !63;
            let access = if *write {
                wbytes += 64;
                Access::write(addr, 64)
            } else {
                rbytes += 64;
                Access::read(addr, 64)
            };
            bank.enqueue(access, 0);
        }
        bank.advance_to(u64::MAX / 2, &mut done);
        assert!(bank.is_idle());
        assert_eq!(bank.stats().accesses(), reqs.len() as u64);
        assert_eq!(bank.stats().bytes_read, rbytes);
        assert_eq!(bank.stats().bytes_written, wbytes);
        assert_eq!(
            bank.stats().row_hits + bank.stats().row_opens + bank.stats().row_conflicts,
            reqs.len() as u64
        );
    }
}

/// Advancing in many small steps yields the same completion order as one
/// big step (the model is advance-granularity independent).
#[test]
fn advance_granularity_independent() {
    let mut rng = StdRng::seed_from_u64(0xD4A0_0003);
    for _case in 0..64 {
        let n = rng.gen_range(1usize..32);
        let addrs: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..1 << 18)).collect();
        let step = rng.gen_range(1u64..97);
        let cfg = DramConfig::ddr4_2400();
        let horizon = 200_000u64;

        let mut big = DramBank::new(cfg);
        let mut big_done = Vec::new();
        for a in &addrs {
            big.enqueue(Access::read(a & !63, 64), 0);
        }
        big.advance_to(horizon, &mut big_done);

        let mut small = DramBank::new(cfg);
        let mut small_done = Vec::new();
        for a in &addrs {
            small.enqueue(Access::read(a & !63, 64), 0);
        }
        let mut t = 0;
        while t < horizon {
            t += step;
            small.advance_to(t.min(horizon), &mut small_done);
        }
        assert_eq!(big_done, small_done);
    }
}
