//! Differential pinning of the optimized DPU cycle loop against the naive
//! per-cycle reference.
//!
//! The optimized scheduler (pre-decoded side tables, event-driven wakeup,
//! allocation-free steady state) must be *timing-invisible*: every
//! simulated quantity — cycle counts, idle attribution, instruction mixes,
//! the trace itself — has to match what the straightforward
//! scan-everything-every-cycle loop computes. `DpuConfig::naive_loop`
//! keeps that reference loop alive so this suite can assert full
//! `DpuRunStats` equality over the whole PrIM suite, across tasklet
//! counts and pipeline modes.

use pim_dpu::{DpuConfig, IlpFeatures};
use prim_suite::{all_workloads, DatasetSize, RunConfig, Workload};

const TASKLETS: [u32; 3] = [1, 8, 16];

/// Runs one workload under `cfg` with both loops and asserts the per-DPU
/// stats are identical field-for-field (via the `Debug` rendering, which
/// covers every stat including traces and f64 idle attribution).
fn assert_loops_agree(w: &dyn Workload, mode: &str, cfg: DpuConfig) {
    let fast = w
        .run(DatasetSize::Tiny, &RunConfig::single(cfg.clone()))
        .unwrap_or_else(|e| panic!("{} [{mode}] optimized run failed: {e}", w.name()));
    let naive = w
        .run(DatasetSize::Tiny, &RunConfig::single(cfg.with_naive_loop()))
        .unwrap_or_else(|e| panic!("{} [{mode}] naive run failed: {e}", w.name()));
    assert_eq!(fast.per_dpu.len(), naive.per_dpu.len(), "{} [{mode}]: DPU count differs", w.name());
    for (i, (f, n)) in fast.per_dpu.iter().zip(&naive.per_dpu).enumerate() {
        assert_eq!(f.cycles, n.cycles, "{} [{mode}] dpu {i}: cycle counts differ", w.name());
        assert_eq!(
            format!("{f:?}"),
            format!("{n:?}"),
            "{} [{mode}] dpu {i}: stats differ beyond cycles",
            w.name()
        );
    }
}

#[test]
fn scalar_loop_matches_naive_reference() {
    for w in all_workloads() {
        for n in TASKLETS {
            assert_loops_agree(w.as_ref(), "scalar", DpuConfig::paper_baseline(n));
        }
    }
}

#[test]
fn ilp_loop_matches_naive_reference() {
    for w in all_workloads() {
        for n in TASKLETS {
            let cfg = DpuConfig::paper_baseline(n).with_ilp(IlpFeatures::all());
            assert_loops_agree(w.as_ref(), "ilp", cfg);
        }
    }
}

#[test]
fn cached_loop_matches_naive_reference() {
    for w in all_workloads().into_iter().filter(|w| w.supports_cache_mode()) {
        for n in TASKLETS {
            let cfg = DpuConfig::paper_baseline(n).with_paper_caches();
            assert_loops_agree(w.as_ref(), "cached", cfg);
        }
    }
}
