//! Differential pinning of the optimized DPU executor tiers against the
//! naive per-cycle reference.
//!
//! The optimized executors — the decoded fast loop (pre-decoded side
//! tables, event-driven wakeup, allocation-free steady state) and the
//! block-compiled threaded-code loop — must be *timing-invisible*: every
//! simulated quantity — cycle counts, idle attribution, instruction mixes,
//! the trace itself — has to match what the straightforward
//! scan-everything-every-cycle loop computes. [`ExecTier`] keeps all three
//! loops alive so this suite can assert full `DpuRunStats` equality over
//! the whole extended PrIM suite (naive × fast × compiled, across tasklet
//! counts and pipeline modes).

use pim_dpu::{DpuConfig, ExecTier, IlpFeatures};
use prim_suite::{all_workloads, extended_workloads, DatasetSize, RunConfig, Workload};

const TASKLETS: [u32; 3] = [1, 8, 16];

/// The three scalar executor tiers, with leg labels.
const TIERS: [(&str, ExecTier); 3] =
    [("naive", ExecTier::Naive), ("fast", ExecTier::Fast), ("compiled", ExecTier::Compiled)];

/// Runs one workload under `cfg` through every executor tier and asserts
/// the per-DPU stats are identical field-for-field (via the `Debug`
/// rendering, which covers every stat including traces and f64 idle
/// attribution).
fn assert_loops_agree(w: &dyn Workload, mode: &str, cfg: DpuConfig) {
    let mut rendered: Vec<(&str, Vec<String>)> = Vec::new();
    for (tier_name, tier) in TIERS {
        let out = w
            .run(DatasetSize::Tiny, &RunConfig::single(cfg.clone().with_exec_tier(tier)))
            .unwrap_or_else(|e| panic!("{} [{mode}/{tier_name}] run failed: {e}", w.name()));
        rendered.push((tier_name, out.per_dpu.iter().map(|s| format!("{s:?}")).collect()));
    }
    let (first_tier, first) = &rendered[0];
    for (tier, stats) in &rendered[1..] {
        assert_eq!(
            first.len(),
            stats.len(),
            "{} [{mode}]: DPU count differs between {first_tier} and {tier}",
            w.name()
        );
        assert_eq!(
            first,
            stats,
            "{} [{mode}]: per-DPU stats diverge between {first_tier} and {tier}",
            w.name()
        );
    }
}

#[test]
fn scalar_tiers_match_naive_reference() {
    // The full naive × fast × compiled cross product over every workload
    // in the extended suite (dense PrIM + sparse BSR + quantized NN).
    for w in extended_workloads() {
        for n in TASKLETS {
            assert_loops_agree(w.as_ref(), "scalar", DpuConfig::paper_baseline(n));
        }
    }
}

#[test]
fn ilp_loop_matches_naive_reference() {
    for w in all_workloads() {
        for n in TASKLETS {
            let cfg = DpuConfig::paper_baseline(n).with_ilp(IlpFeatures::all());
            assert_loops_agree(w.as_ref(), "ilp", cfg);
        }
    }
}

#[test]
fn cached_loop_matches_naive_reference() {
    for w in all_workloads().into_iter().filter(|w| w.supports_cache_mode()) {
        for n in TASKLETS {
            let cfg = DpuConfig::paper_baseline(n).with_paper_caches();
            assert_loops_agree(w.as_ref(), "cached", cfg);
        }
    }
}

/// Runs one workload over the same 4-DPU population through the per-DPU
/// path and the SoA batched executor (`batch_dpus = 3`, so the population
/// shards into a 3-member batch plus a singleton) and asserts per-DPU
/// stats are identical field-for-field.
///
/// Each DPU holds a different dataset shard, so batches start in lockstep
/// and genuinely diverge mid-kernel — this leg pins the divergence
/// materialization path on real workloads, not just synthetic kernels.
fn assert_batched_agrees(w: &dyn Workload, mode: &str, cfg: DpuConfig) {
    const DPUS: u32 = 4;
    let per_dpu = w
        .run(DatasetSize::Tiny, &RunConfig::multi(DPUS, cfg.clone()))
        .unwrap_or_else(|e| panic!("{} [{mode}] per-DPU run failed: {e}", w.name()));
    let batched = w
        .run(DatasetSize::Tiny, &RunConfig::multi(DPUS, cfg.with_batched(3)))
        .unwrap_or_else(|e| panic!("{} [{mode}] batched run failed: {e}", w.name()));
    batched
        .validation
        .as_ref()
        .unwrap_or_else(|e| panic!("{} [{mode}] batched output failed validation: {e}", w.name()));
    assert_eq!(
        per_dpu.per_dpu.len(),
        batched.per_dpu.len(),
        "{} [{mode}]: DPU count differs",
        w.name()
    );
    for (i, (p, b)) in per_dpu.per_dpu.iter().zip(&batched.per_dpu).enumerate() {
        assert_eq!(
            format!("{p:?}"),
            format!("{b:?}"),
            "{} [{mode}] dpu {i}: batched stats diverge from per-DPU path",
            w.name()
        );
    }
}

#[test]
fn batched_executor_matches_per_dpu_path() {
    // SIMT configurations fall back to individual launches inside
    // `run_batch` (`soa_eligible` rejects them), so the batched legs here
    // are the three scoreboard-loop modes; SIMT is covered below.
    for w in all_workloads() {
        for n in TASKLETS {
            assert_batched_agrees(w.as_ref(), "scalar", DpuConfig::paper_baseline(n));
            let ilp = DpuConfig::paper_baseline(n).with_ilp(IlpFeatures::all());
            assert_batched_agrees(w.as_ref(), "ilp", ilp);
            if w.supports_cache_mode() {
                // Cache-centric runs are single-DPU by construction (and
                // cached mode never enters lockstep), so this leg pins the
                // batched sweep on a singleton batch.
                let cached = DpuConfig::paper_baseline(n).with_paper_caches();
                let solo = w
                    .run(DatasetSize::Tiny, &RunConfig::single(cached.clone()))
                    .unwrap_or_else(|e| panic!("{} [cached] run failed: {e}", w.name()));
                let batched = w
                    .run(DatasetSize::Tiny, &RunConfig::single(cached.with_batched(3)))
                    .unwrap_or_else(|e| panic!("{} [cached] batched run failed: {e}", w.name()));
                assert_eq!(
                    format!("{:?}", solo.per_dpu),
                    format!("{:?}", batched.per_dpu),
                    "{} [cached]: batched stats diverge from per-DPU path",
                    w.name()
                );
            }
        }
    }
}

/// Ring capacity for the event-tracing legs: large enough that no PrIM
/// tiny-dataset run wraps, so the sink exercises its full record path.
const RING: usize = 1 << 16;

#[test]
fn event_tracing_is_invisible_to_both_loops() {
    // The {fast, naive} x {NullSink, RingSink} cross product: attaching a
    // structured event trace must change *nothing* in either loop's
    // simulated quantities, and both loops must still agree with each
    // other while recording.
    for w in all_workloads() {
        let base = DpuConfig::paper_baseline(8);
        let legs = [
            ("fast+null", base.clone()),
            ("fast+ring", base.clone().with_event_trace(RING)),
            ("naive+null", base.clone().with_naive_loop()),
            ("naive+ring", base.with_naive_loop().with_event_trace(RING)),
        ];
        let mut rendered: Vec<(&str, Vec<String>)> = Vec::new();
        for (leg, cfg) in legs {
            let out = w
                .run(DatasetSize::Tiny, &RunConfig::single(cfg))
                .unwrap_or_else(|e| panic!("{} [{leg}] run failed: {e}", w.name()));
            rendered.push((leg, out.per_dpu.iter().map(|s| format!("{s:?}")).collect()));
        }
        let (first_leg, first) = &rendered[0];
        for (leg, stats) in &rendered[1..] {
            assert_eq!(
                first,
                stats,
                "{}: per-DPU stats diverge between {first_leg} and {leg}",
                w.name()
            );
        }
    }
}

#[test]
fn simt_divergent_programs_are_sink_invisible_and_match_the_oracle() {
    // The SIMT front-end has no naive loop, so its leg of the cross
    // product is {NullSink, RingSink} on a program with real divergence:
    // lane-parity split paths plus tid-dependent loop trip counts, so
    // warps fracture and reconverge repeatedly.
    use pim_asm::KernelBuilder;
    use pim_dpu::{Dpu, SimtConfig};
    use pim_isa::{AluOp, Cond};
    use pim_ref::RefInterpreter;

    const N: u32 = 16;
    let mut k = KernelBuilder::new();
    let slab = k.global_zeroed("slab", 64 * N);
    let [t, p, v, w, i] = k.regs(["t", "p", "v", "w", "i"]);
    k.tid(t);
    k.mul(p, t, 64);
    k.add(p, p, slab as i32);
    k.mov(v, t);
    // Lane-parity divergence: odd and even lanes take different arms.
    let odd = k.fresh_label("odd");
    let merge = k.fresh_label("merge");
    k.alu(AluOp::And, w, t, 1);
    k.branch(Cond::Ne, w, 0, &odd);
    k.alu(AluOp::Mul, v, v, 3);
    k.jump(&merge);
    k.place(&odd);
    k.add(v, v, 100);
    k.place(&merge);
    // Tid-dependent trip counts: lanes fall out of the loop one by one.
    k.add(i, t, 1);
    let top = k.label_here("top");
    k.add(v, v, 7);
    k.sub(i, i, 1);
    k.branch(Cond::Ne, i, 0, &top);
    k.sw(v, p, 0);
    k.stop();
    let program = k.build().expect("divergent kernel builds");

    let cfg = DpuConfig::paper_baseline(N).with_simt(SimtConfig::default());
    let run = |cfg: DpuConfig| {
        let mut dpu = Dpu::new(cfg);
        dpu.load_program(&program).unwrap();
        let stats = dpu.launch().expect("SIMT run completes");
        (format!("{stats:#?}"), dpu.read_wram(0, 64 * 1024))
    };
    let (plain_stats, plain_wram) = run(cfg.clone());
    let (traced_stats, traced_wram) = run(cfg.with_event_trace(RING));
    assert_eq!(plain_stats, traced_stats, "RingSink perturbed SIMT stats");
    assert_eq!(plain_wram, traced_wram, "RingSink perturbed SIMT memory");

    let mut oracle = RefInterpreter::new(&program, N);
    oracle.run(1_000_000).expect("oracle completes");
    assert_eq!(plain_wram, oracle.read_wram(0, 64 * 1024), "SIMT end state diverges from oracle");
}
