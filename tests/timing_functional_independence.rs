//! Metamorphic property: **timing configuration must never change
//! architectural results**. The same kernel and inputs must produce
//! identical memory contents under the baseline, every ILP feature set,
//! the SIMT front-end, the MMU, and the cache-centric memory model — the
//! invariant that makes the case-study comparisons (§V) meaningful at all.

use pim_asm::KernelBuilder;
use pim_dpu::{Dpu, DpuConfig, IlpFeatures, SimtConfig};
use pim_isa::{AluOp, Cond};
use pim_rng::StdRng;

/// Builds a little data-parallel kernel from a random recipe: each tasklet
/// walks a disjoint WRAM slice applying a random ALU pipeline, with an
/// optional shared-accumulator critical section.
fn build_kernel(ops: &[(AluOp, i32)], with_lock: bool, n_tasklets: u32) -> pim_asm::DpuProgram {
    const SLOT: u32 = 64; // words per tasklet
    let mut k = KernelBuilder::new();
    let data = k.global_zeroed("data", 4 * SLOT * n_tasklets);
    let shared = k.global_zeroed("shared", 4);
    let [t, p, end, v, s] = k.regs(["t", "p", "end", "v", "s"]);
    k.tid(t);
    k.mul(p, t, (SLOT * 4) as i32);
    k.add(p, p, data as i32);
    k.add(end, p, (SLOT * 4) as i32);
    let top = k.label_here("loop");
    k.lw(v, p, 0);
    for (op, imm) in ops {
        k.alu(*op, v, v, *imm);
    }
    k.sw(v, p, 0);
    if with_lock {
        k.acquire(0);
        k.movi(s, shared as i32);
        k.lw(v, s, 0);
        k.add(v, v, 1);
        k.sw(v, s, 0);
        k.release(0);
    }
    k.add(p, p, 4);
    k.branch(Cond::Ltu, p, end, &top);
    k.stop();
    k.build().expect("kernel builds")
}

fn run_with(cfg: DpuConfig, program: &pim_asm::DpuProgram, input: &[u8]) -> (Vec<u8>, Vec<u8>) {
    let mut dpu = Dpu::new(cfg);
    dpu.load_program(program).unwrap();
    dpu.write_wram_symbol("data", input);
    dpu.launch().unwrap();
    (dpu.read_wram_symbol("data"), dpu.read_wram_symbol("shared"))
}

fn arb_ops(rng: &mut StdRng) -> Vec<(AluOp, i32)> {
    const SAFE_OPS: [AluOp; 8] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Xor,
        AluOp::And,
        AluOp::Or,
        AluOp::Mul,
        AluOp::Min,
        AluOp::Max,
    ];
    let len = rng.gen_range(1usize..6);
    (0..len).map(|_| (*rng.choose(&SAFE_OPS), rng.gen_range(-1000i32..1000))).collect()
}

#[test]
fn every_timing_configuration_computes_the_same_result() {
    let mut rng = StdRng::seed_from_u64(0x7131_46FD);
    for _case in 0..24 {
        let ops = arb_ops(&mut rng);
        let with_lock = rng.gen_bool();
        let input_words: Vec<i32> = (0..64 * 16).map(|_| rng.next_u32() as i32).collect();
        let n_tasklets = 16;
        let program = build_kernel(&ops, with_lock, n_tasklets);
        let input: Vec<u8> = input_words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let configs: Vec<(&str, DpuConfig)> = vec![
            ("base", DpuConfig::paper_baseline(n_tasklets)),
            ("one-thread", DpuConfig::paper_baseline(n_tasklets)),
            ("ilp-all", DpuConfig::paper_baseline(n_tasklets).with_ilp(IlpFeatures::all())),
            (
                "simt",
                DpuConfig::paper_baseline(n_tasklets)
                    .with_simt(SimtConfig { coalescing: true, ..SimtConfig::default() }),
            ),
            ("mmu", DpuConfig::paper_baseline(n_tasklets).with_paper_mmu()),
            ("cached", DpuConfig::paper_baseline(n_tasklets).with_paper_caches()),
        ];
        let (golden_data, golden_shared) = run_with(configs[0].1.clone(), &program, &input);
        for (name, cfg) in &configs[1..] {
            let (data, shared) = run_with(cfg.clone(), &program, &input);
            assert_eq!(&data, &golden_data, "config `{name}` changed the data output");
            assert_eq!(&shared, &golden_shared, "config `{name}` changed the shared counter");
        }
    }
}
