//! Functional oracle: a ~100-line, timing-free reference interpreter for
//! the ISA, written independently of the simulator's execution engine.
//! Random (terminating-by-construction) single-tasklet programs must leave
//! WRAM and MRAM in exactly the same state under both implementations —
//! catching functional bugs that every timing configuration would share.

use pim_asm::DpuProgram;
use pim_dpu::{Dpu, DpuConfig};
use pim_isa::{AluOp, Cond, Instruction, Operand, Width};
use pim_rng::StdRng;

const WRAM_SIZE: usize = 64 * 1024;
const MRAM_SIZE: usize = 64 * 1024 * 1024;

/// The independent interpreter: straight fetch-execute, no pipeline.
struct RefInterp {
    regs: [u32; 24],
    pc: u32,
    wram: Vec<u8>,
    mram: Vec<u8>,
    atomic: [bool; 256],
}

impl RefInterp {
    fn new(program: &DpuProgram, mram_seed: &[u8]) -> Self {
        let mut wram = vec![0u8; WRAM_SIZE];
        let base = program.wram_base as usize;
        wram[base..base + program.wram_init.len()].copy_from_slice(&program.wram_init);
        let mut mram = vec![0u8; MRAM_SIZE];
        mram[..mram_seed.len()].copy_from_slice(mram_seed);
        RefInterp { regs: [0; 24], pc: 0, wram, mram, atomic: [false; 256] }
    }

    fn op(&self, o: Operand) -> u32 {
        match o {
            Operand::Reg(r) => self.regs[r.index() as usize],
            Operand::Imm(i) => i as u32,
        }
    }

    fn run(&mut self, program: &DpuProgram, max_steps: u64) {
        let mut steps = 0;
        loop {
            steps += 1;
            assert!(steps < max_steps, "reference interpreter ran away");
            let instr = program.instrs[self.pc as usize];
            self.pc += 1;
            match instr {
                Instruction::Nop => {}
                Instruction::Stop => return,
                Instruction::Alu { op, rd, ra, rb } => {
                    let v = op.eval(self.regs[ra.index() as usize], self.op(rb));
                    self.regs[rd.index() as usize] = v;
                }
                Instruction::Movi { rd, imm } => self.regs[rd.index() as usize] = imm as u32,
                Instruction::Tid { rd } => self.regs[rd.index() as usize] = 0,
                Instruction::Load { width, signed, rd, base, offset } => {
                    let a = self.regs[base.index() as usize].wrapping_add(offset as u32) as usize;
                    let v = match (width, signed) {
                        (Width::Byte, false) => u32::from(self.wram[a]),
                        (Width::Byte, true) => self.wram[a] as i8 as i32 as u32,
                        (Width::Half, false) => {
                            u32::from(u16::from_le_bytes(self.wram[a..a + 2].try_into().unwrap()))
                        }
                        (Width::Half, true) => {
                            u16::from_le_bytes(self.wram[a..a + 2].try_into().unwrap()) as i16
                                as i32 as u32
                        }
                        (Width::Word, _) => {
                            u32::from_le_bytes(self.wram[a..a + 4].try_into().unwrap())
                        }
                    };
                    self.regs[rd.index() as usize] = v;
                }
                Instruction::Store { width, rs, base, offset } => {
                    let a = self.regs[base.index() as usize].wrapping_add(offset as u32) as usize;
                    let v = self.regs[rs.index() as usize];
                    match width {
                        Width::Byte => self.wram[a] = v as u8,
                        Width::Half => {
                            self.wram[a..a + 2].copy_from_slice(&(v as u16).to_le_bytes());
                        }
                        Width::Word => {
                            self.wram[a..a + 4].copy_from_slice(&v.to_le_bytes());
                        }
                    }
                }
                Instruction::Ldma { wram, mram, len } => {
                    let w = self.regs[wram.index() as usize] as usize;
                    let m = self.regs[mram.index() as usize] as usize;
                    let l = self.op(len) as usize;
                    let tmp = self.mram[m..m + l].to_vec();
                    self.wram[w..w + l].copy_from_slice(&tmp);
                }
                Instruction::Sdma { wram, mram, len } => {
                    let w = self.regs[wram.index() as usize] as usize;
                    let m = self.regs[mram.index() as usize] as usize;
                    let l = self.op(len) as usize;
                    let tmp = self.wram[w..w + l].to_vec();
                    self.mram[m..m + l].copy_from_slice(&tmp);
                }
                Instruction::Branch { cond, ra, rb, target } => {
                    if cond.eval(self.regs[ra.index() as usize], self.op(rb)) {
                        self.pc = target;
                    }
                }
                Instruction::Jump { target } => self.pc = target,
                Instruction::Jal { rd, target } => {
                    self.regs[rd.index() as usize] = self.pc;
                    self.pc = target;
                }
                Instruction::Jr { ra } => self.pc = self.regs[ra.index() as usize],
                Instruction::Acquire { bit } => {
                    // Single tasklet: acquire always succeeds.
                    self.atomic[self.op(bit) as usize] = true;
                }
                Instruction::Release { bit } => {
                    self.atomic[self.op(bit) as usize] = false;
                }
            }
        }
    }
}

/// A random, terminating-by-construction single-tasklet program: a bounded
/// loop whose body applies random ALU/memory operations over a small WRAM
/// window plus DMA round-trips against MRAM.
#[derive(Debug, Clone)]
struct Recipe {
    iters: i32,
    body: Vec<(u8, AluOp, i32)>, // (kind, op, imm)
    dma_len: i32,
}

fn arb_recipe(rng: &mut StdRng) -> Recipe {
    const OPS: [AluOp; 10] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Xor,
        AluOp::And,
        AluOp::Or,
        AluOp::Mul,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Min,
        AluOp::Max,
    ];
    let body_len = rng.gen_range(1usize..10);
    Recipe {
        iters: rng.gen_range(1i32..20),
        body: (0..body_len)
            .map(|_| (rng.gen_range(0u8..4), *rng.choose(&OPS), rng.gen_range(-500i32..500)))
            .collect(),
        dma_len: *rng.choose(&[8i32, 64, 256, 1000]),
    }
}

fn build(recipe: &Recipe) -> DpuProgram {
    let mut k = pim_asm::KernelBuilder::new();
    let data = k.global_zeroed("data", 4096);
    let [i, p, v, w, m] = k.regs(["i", "p", "v", "w", "m"]);
    k.movi(i, recipe.iters);
    let top = k.label_here("loop");
    // p walks the data window with the iteration count.
    k.mul(p, i, 68);
    k.alu(AluOp::And, p, p, 1020);
    k.add(p, p, data as i32);
    k.lw(v, p, 0);
    for (kind, op, imm) in &recipe.body {
        match kind % 4 {
            0 => k.alu(*op, v, v, *imm),
            1 => {
                k.alu(*op, w, v, *imm);
                k.alu(AluOp::Xor, v, v, w);
            }
            2 => {
                k.sw(v, p, 0);
                k.lbu(w, p, 1);
                k.add(v, v, w);
            }
            _ => k.alu(*op, v, v, i),
        }
    }
    k.sw(v, p, 0);
    // DMA round trip: push the window out and pull it back shifted.
    k.movi(w, data as i32);
    k.mul(m, i, 512);
    k.add(m, m, 4096);
    k.sdma(w, m, recipe.dma_len);
    k.add(w, w, 1024);
    k.ldma(w, m, recipe.dma_len);
    k.sub(i, i, 1);
    k.branch(Cond::Ne, i, 0, &top);
    k.stop();
    k.build().expect("recipe builds")
}

#[test]
fn simulator_matches_the_reference_interpreter() {
    let mut rng = StdRng::seed_from_u64(0x0_0AC1E);
    for case in 0..48 {
        let recipe = arb_recipe(&mut rng);
        let mut mram_seed = vec![0u8; 2048];
        rng.fill_bytes(&mut mram_seed);
        let program = build(&recipe);

        let mut oracle = RefInterp::new(&program, &mram_seed);
        oracle.run(&program, 2_000_000);

        let mut dpu = Dpu::new(DpuConfig::paper_baseline(1));
        dpu.load_program(&program).unwrap();
        dpu.write_mram(0, &mram_seed);
        dpu.launch().unwrap();

        // Compare the full architectural memory state.
        let wram = dpu.read_wram(0, 16 * 1024);
        assert_eq!(&wram[..], &oracle.wram[..16 * 1024], "WRAM diverged (case {case})");
        let mram = dpu.read_mram(0, 64 * 1024);
        assert_eq!(&mram[..], &oracle.mram[..64 * 1024], "MRAM diverged (case {case})");
    }
}
