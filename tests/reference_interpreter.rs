//! Functional oracle, single-tasklet edition: random
//! (terminating-by-construction) programs must leave WRAM and MRAM in
//! exactly the same state under the cycle-level simulator and the
//! timing-free [`pim_ref::RefInterpreter`] — catching functional bugs that
//! every timing configuration would share. Multi-tasklet coverage lives in
//! `tests/random_differential.rs`.

use pim_asm::DpuProgram;
use pim_dpu::{Dpu, DpuConfig};
use pim_isa::{AluOp, Cond};
use pim_ref::RefInterpreter;
use pim_rng::StdRng;

/// A random, terminating-by-construction single-tasklet program: a bounded
/// loop whose body applies random ALU/memory operations over a small WRAM
/// window plus DMA round-trips against MRAM.
#[derive(Debug, Clone)]
struct Recipe {
    iters: i32,
    body: Vec<(u8, AluOp, i32)>, // (kind, op, imm)
    dma_len: i32,
}

fn arb_recipe(rng: &mut StdRng) -> Recipe {
    const OPS: [AluOp; 10] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Xor,
        AluOp::And,
        AluOp::Or,
        AluOp::Mul,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Min,
        AluOp::Max,
    ];
    let body_len = rng.gen_range(1usize..10);
    Recipe {
        iters: rng.gen_range(1i32..20),
        body: (0..body_len)
            .map(|_| (rng.gen_range(0u8..4), *rng.choose(&OPS), rng.gen_range(-500i32..500)))
            .collect(),
        dma_len: *rng.choose(&[8i32, 64, 256, 1000]),
    }
}

fn build(recipe: &Recipe) -> DpuProgram {
    let mut k = pim_asm::KernelBuilder::new();
    let data = k.global_zeroed("data", 4096);
    let [i, p, v, w, m] = k.regs(["i", "p", "v", "w", "m"]);
    k.movi(i, recipe.iters);
    let top = k.label_here("loop");
    // p walks the data window with the iteration count.
    k.mul(p, i, 68);
    k.alu(AluOp::And, p, p, 1020);
    k.add(p, p, data as i32);
    k.lw(v, p, 0);
    for (kind, op, imm) in &recipe.body {
        match kind % 4 {
            0 => k.alu(*op, v, v, *imm),
            1 => {
                k.alu(*op, w, v, *imm);
                k.alu(AluOp::Xor, v, v, w);
            }
            2 => {
                k.sw(v, p, 0);
                k.lbu(w, p, 1);
                k.add(v, v, w);
            }
            _ => k.alu(*op, v, v, i),
        }
    }
    k.sw(v, p, 0);
    // DMA round trip: push the window out and pull it back shifted.
    k.movi(w, data as i32);
    k.mul(m, i, 512);
    k.add(m, m, 4096);
    k.sdma(w, m, recipe.dma_len);
    k.add(w, w, 1024);
    k.ldma(w, m, recipe.dma_len);
    k.sub(i, i, 1);
    k.branch(Cond::Ne, i, 0, &top);
    k.stop();
    k.build().expect("recipe builds")
}

#[test]
fn simulator_matches_the_reference_interpreter() {
    let mut rng = StdRng::seed_from_u64(0x0_0AC1E);
    for case in 0..48 {
        let recipe = arb_recipe(&mut rng);
        let mut mram_seed = vec![0u8; 2048];
        rng.fill_bytes(&mut mram_seed);
        let program = build(&recipe);

        let mut oracle = RefInterpreter::new(&program, 1);
        oracle.write_mram(0, &mram_seed);
        oracle.run(2_000_000).unwrap_or_else(|e| panic!("oracle fault (case {case}): {e}"));

        let mut dpu = Dpu::new(DpuConfig::paper_baseline(1));
        dpu.load_program(&program).unwrap();
        dpu.write_mram(0, &mram_seed);
        dpu.launch().unwrap();

        // Compare the full architectural memory state.
        let wram = dpu.read_wram(0, 16 * 1024);
        assert_eq!(&wram[..], &oracle.read_wram(0, 16 * 1024)[..], "WRAM diverged (case {case})");
        let mram = dpu.read_mram(0, 64 * 1024);
        assert_eq!(&mram[..], &oracle.read_mram(0, 64 * 1024)[..], "MRAM diverged (case {case})");
    }
}

#[test]
fn builtin_oracle_check_passes_and_reports_divergence_context() {
    // The same differential, but through `DpuConfig::with_oracle_check`:
    // the simulator itself replays the launch on the interpreter and
    // compares final memory.
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let program = build(&arb_recipe(&mut rng));
    let mut dpu = Dpu::new(DpuConfig::paper_baseline(1).with_oracle_check());
    dpu.load_program(&program).unwrap();
    dpu.launch().expect("oracle agrees with the pipeline");
}
