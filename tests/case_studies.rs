//! Directional checks for the paper's four §V case studies: beyond
//! functional validation, the *relative* results must point the way the
//! paper's figures point.

use pim_dpu::{DpuConfig, IlpFeatures, SimtConfig};
use pimulator::experiments;
use pimulator::jobs::JobRunner;
use prim_suite::{workload_by_name, DatasetSize, RunConfig};

fn time_of(name: &str, cfg: DpuConfig) -> f64 {
    let w = workload_by_name(name).unwrap();
    let run = w.run(DatasetSize::Tiny, &RunConfig::single(cfg)).unwrap();
    run.assert_valid();
    run.merged().time_ns()
}

#[test]
fn simt_ladder_is_monotone_on_gemv() {
    // Fig 11: Base < SIMT < SIMT+AC < SIMT+AC+4x ≤ SIMT+AC+16x.
    let rows = experiments::fig11_simt(&JobRunner::default(), DatasetSize::Tiny, 16).unwrap();
    assert!(rows[1].speedup > 1.0, "SIMT must beat Base");
    assert!(rows[2].speedup > rows[1].speedup, "+AC must add speedup");
    assert!(rows[3].speedup > rows[2].speedup * 0.99, "+4x must not regress");
    assert!(rows[4].speedup > rows[3].speedup * 0.99, "+16x must not regress");
    // SIMT compute ceiling is 16 scalar instructions per cycle.
    for r in &rows[1..] {
        assert!(r.ipc <= 16.0 + 1e-9);
    }
}

#[test]
fn ilp_features_are_additive_on_a_compute_bound_workload() {
    // Fig 12 on TS (compute-bound): each feature must not regress, and the
    // full ladder must be a solid win.
    let base = DpuConfig::paper_baseline(16);
    let mut prev = time_of("TS", base.clone());
    let first = prev;
    for ilp in experiments::ilp_ladder().into_iter().skip(1) {
        let t = time_of("TS", base.clone().with_ilp(ilp));
        assert!(t <= prev * 1.02, "{} regressed: {t} vs {prev}", ilp.label());
        prev = t;
    }
    assert!(first / prev > 2.0, "full DRSF ladder should speed TS >2x, got {:.2}x", first / prev);
}

#[test]
fn frequency_doubling_helps_memory_bound_workloads_less() {
    // Fig 12's second-order observation: F helps compute-bound TS more
    // than memory-bound BS.
    let base = DpuConfig::paper_baseline(16);
    let drs = IlpFeatures {
        data_forwarding: true,
        unified_rf: true,
        superscalar: true,
        double_frequency: false,
    };
    let drsf = IlpFeatures { double_frequency: true, ..drs };
    let ts_gain =
        time_of("TS", base.clone().with_ilp(drs)) / time_of("TS", base.clone().with_ilp(drsf));
    let bs_gain = time_of("BS", base.clone().with_ilp(drs)) / time_of("BS", base.with_ilp(drsf));
    assert!(
        ts_gain > bs_gain,
        "F must help compute-bound TS ({ts_gain:.2}x) more than memory-bound BS ({bs_gain:.2}x)"
    );
}

#[test]
fn mram_bandwidth_scaling_helps_memory_bound_only() {
    // Fig 13: BS (memory-bound) scales with MRAM bandwidth; TS
    // (compute-bound) does not.
    let rows =
        experiments::fig13_mram_scaling(&JobRunner::default(), DatasetSize::Tiny, 16, &[1.0, 4.0])
            .unwrap();
    let get = |w: &str, c: &str, s: f64| {
        rows.iter()
            .find(|r| r.workload == w && r.config == c && (r.scale - s).abs() < 1e-9)
            .map(|r| r.speedup)
            .unwrap()
    };
    let bs = get("BS", "Base", 4.0);
    let ts = get("TS", "Base", 4.0);
    assert!(bs > 2.0, "BS should scale with MRAM bandwidth, got {bs:.2}x");
    assert!(ts < 1.2, "TS should not care about MRAM bandwidth, got {ts:.2}x");
}

#[test]
fn mmu_overheads_are_small_and_function_preserving() {
    // §V-C: the paper reports avg 0.8% / max 14.1% slowdown.
    let rows = experiments::mmu_overhead(&JobRunner::default(), DatasetSize::Tiny, 16).unwrap();
    let avg: f64 = rows.iter().map(|r| r.overhead).sum::<f64>() / rows.len() as f64;
    let max = rows.iter().map(|r| r.overhead).fold(0.0f64, f64::max);
    assert!(avg < 0.05, "average MMU overhead {avg:.3} should be small");
    assert!(max < 0.25, "max MMU overhead {max:.3} should be bounded");
    for r in &rows {
        // Translation can perturb DMA arrival timing and occasionally
        // improve FR-FCFS row locality by a hair; allow small negative
        // noise but nothing systematic.
        assert!(
            r.overhead >= -0.02,
            "{}: MMU 'speedup' of {:.3} is beyond timing noise",
            r.workload,
            -r.overhead
        );
        assert!(
            r.tlb_hit_rate > 0.5,
            "{}: DMA is page-local, hit rate {}",
            r.workload,
            r.tlb_hit_rate
        );
    }
}

#[test]
fn caches_beat_scratchpads_on_bs_and_both_modes_validate() {
    // Fig 15/16's headline: BS overfetches under scratchpads.
    let rows =
        experiments::fig16_bytes_read(&JobRunner::default(), DatasetSize::Tiny, &[16]).unwrap();
    let bs = rows.iter().find(|r| r.workload == "BS").unwrap();
    assert!(bs.scratchpad_bytes > 2 * bs.cache_bytes);
    assert!(bs.cache_ns < bs.scratchpad_ns, "BS should run faster under caches");
}

#[test]
fn simt_coalescing_cuts_memory_requests_on_gemv() {
    let gemv = workload_by_name("GEMV").unwrap();
    let mk = |coalescing| {
        let cfg = DpuConfig::paper_baseline(16)
            .with_simt(SimtConfig { coalescing, ..SimtConfig::default() });
        let run = gemv.run(DatasetSize::Tiny, &RunConfig::single(cfg)).unwrap();
        run.assert_valid();
        run.merged()
    };
    let plain = mk(false);
    let ac = mk(true);
    assert!(
        ac.dma_requests < plain.dma_requests,
        "coalescing must merge warp DMA ({} vs {})",
        ac.dma_requests,
        plain.dma_requests
    );
    assert!(ac.time_ns() <= plain.time_ns());
}
