//! Whole-stack validation sweep — the functional half of the paper's
//! §III-C simulator validation (the hardware-correlation half is
//! substituted per DESIGN.md §1): every PrIM workload, across tasklet
//! counts, DPU counts, and memory models, must reproduce its reference
//! implementation bit-for-bit.

use pim_dpu::DpuConfig;
use prim_suite::{all_workloads, DatasetSize, RunConfig};

#[test]
fn every_workload_validates_across_tasklet_counts() {
    for w in all_workloads() {
        for threads in [1, 2, 8, 24] {
            let run = w
                .run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(threads)))
                .unwrap_or_else(|e| panic!("{} @{threads}t faulted: {e}", w.name()));
            assert!(
                run.validation.is_ok(),
                "{} @{threads}t: {}",
                w.name(),
                run.validation.unwrap_err()
            );
            let s = &run.per_dpu[0];
            assert!(s.instructions > 0, "{} executed nothing", w.name());
            assert!(s.cycles > 0);
        }
    }
}

#[test]
fn every_workload_strong_scales_functionally() {
    for w in all_workloads() {
        if !w.supports_multi_dpu() {
            continue;
        }
        let run = w
            .run(DatasetSize::Tiny, &RunConfig::multi(4, DpuConfig::paper_baseline(8)))
            .unwrap_or_else(|e| panic!("{} x4 faulted: {e}", w.name()));
        assert!(run.validation.is_ok(), "{} x4: {}", w.name(), run.validation.unwrap_err());
        assert_eq!(run.per_dpu.len(), 4);
    }
}

#[test]
fn every_workload_validates_under_caches() {
    for w in all_workloads() {
        if !w.supports_cache_mode() {
            continue;
        }
        let cfg = DpuConfig::paper_baseline(8).with_paper_caches();
        let run = w
            .run(DatasetSize::Tiny, &RunConfig::single(cfg))
            .unwrap_or_else(|e| panic!("{} cached faulted: {e}", w.name()));
        assert!(run.validation.is_ok(), "{} cached: {}", w.name(), run.validation.unwrap_err());
        let s = &run.per_dpu[0];
        assert!(s.dcache.is_some(), "{} must collect D-cache stats", w.name());
        assert!(s.icache.is_some(), "{} must collect I-cache stats", w.name());
    }
}

#[test]
fn every_workload_validates_under_the_mmu() {
    for w in all_workloads() {
        let cfg = DpuConfig::paper_baseline(8).with_paper_mmu();
        let run = w
            .run(DatasetSize::Tiny, &RunConfig::single(cfg))
            .unwrap_or_else(|e| panic!("{} +MMU faulted: {e}", w.name()));
        assert!(run.validation.is_ok(), "{} +MMU: {}", w.name(), run.validation.unwrap_err());
        let s = &run.per_dpu[0];
        let mmu = s.mmu.expect("MMU stats collected");
        assert!(mmu.tlb_hits + mmu.tlb_misses > 0, "{} never translated", w.name());
    }
}

#[test]
fn every_workload_matches_the_functional_oracle() {
    // Differential sweep against the timing-free `pim-ref` interpreter:
    // with the oracle check enabled, every launch replays on the oracle
    // and faults on the first diverging WRAM/MRAM byte — so the
    // cycle-level pipeline (revolver scheduling, DMA timing, hazards)
    // must be *functionally* invisible for every PrIM workload.
    for w in all_workloads() {
        for threads in [1, 8] {
            let cfg = DpuConfig::paper_baseline(threads).with_oracle_check();
            let run = w
                .run(DatasetSize::Tiny, &RunConfig::single(cfg))
                .unwrap_or_else(|e| panic!("{} @{threads}t vs oracle: {e}", w.name()));
            assert!(
                run.validation.is_ok(),
                "{} @{threads}t: {}",
                w.name(),
                run.validation.unwrap_err()
            );
        }
    }
}

#[test]
fn attribution_is_conserved_for_every_workload() {
    for w in all_workloads() {
        let run =
            w.run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(16))).unwrap();
        let s = &run.per_dpu[0];
        let covered = s.active_cycles as f64 + s.idle_memory + s.idle_revolver + s.idle_rf;
        assert!(
            (covered - s.cycles as f64).abs() < 1e-3,
            "{}: {} attributed vs {} cycles",
            w.name(),
            covered,
            s.cycles
        );
        let hist: u64 = s.tlp_histogram.iter().sum();
        assert_eq!(hist, s.cycles, "{}: TLP histogram must cover every cycle", w.name());
        let class_sum: u64 = s.class_counts.iter().sum();
        assert_eq!(class_sum, s.instructions, "{}: class counts must sum", w.name());
        let per_tasklet: u64 = s.per_tasklet_instructions.iter().sum();
        assert_eq!(per_tasklet, s.instructions, "{}: per-tasklet counts must sum", w.name());
    }
}

#[test]
fn more_tasklets_never_slow_a_workload_down_dramatically() {
    // Weak monotonicity: 16 tasklets should never be slower than 1 tasklet
    // (sync overheads can eat some of the gain but not all of it).
    for w in all_workloads() {
        let t1 = w
            .run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(1)))
            .unwrap()
            .merged()
            .cycles;
        let t16 = w
            .run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(16)))
            .unwrap()
            .merged()
            .cycles;
        assert!(t16 <= t1, "{}: 16 tasklets ({t16} cycles) slower than 1 ({t1} cycles)", w.name());
    }
}

#[test]
fn every_workload_validates_under_simt() {
    // The SIMT front-end must execute the unmodified SPMD kernels —
    // including intra-warp mutexes (HST-L, TRNS), software barriers (NW,
    // MLP, the SCANs), and divergent search loops (BS) — thanks to the
    // fair PC-group rotation policy.
    use pim_dpu::SimtConfig;
    for w in all_workloads() {
        for coalescing in [false, true] {
            let cfg = DpuConfig::paper_baseline(16)
                .with_simt(SimtConfig { coalescing, ..SimtConfig::default() });
            let run = w
                .run(DatasetSize::Tiny, &RunConfig::single(cfg))
                .unwrap_or_else(|e| panic!("{} SIMT(ac={coalescing}) faulted: {e}", w.name()));
            assert!(
                run.validation.is_ok(),
                "{} SIMT(ac={coalescing}): {}",
                w.name(),
                run.validation.unwrap_err()
            );
        }
    }
}
