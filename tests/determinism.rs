//! Bit-reproducibility: the simulator has no wall-clock or OS entropy, so
//! the same configuration must produce identical cycles, instruction
//! counts, and outputs on every run (DESIGN.md §5, point 12).

use pim_dpu::DpuConfig;
use pimulator::experiments as exp;
use pimulator::jobs::JobRunner;
use prim_suite::{all_workloads, DatasetSize, RunConfig};

#[test]
fn repeated_runs_are_bit_identical() {
    for w in all_workloads() {
        let rc = RunConfig::single(DpuConfig::paper_baseline(8));
        let a = w.run(DatasetSize::Tiny, &rc).unwrap().merged();
        let b = w.run(DatasetSize::Tiny, &rc).unwrap().merged();
        assert_eq!(a.cycles, b.cycles, "{} cycles differ across runs", w.name());
        assert_eq!(a.instructions, b.instructions, "{} instructions differ", w.name());
        assert_eq!(a.class_counts, b.class_counts, "{} mixes differ", w.name());
        assert_eq!(a.dram.bytes_read, b.dram.bytes_read, "{} traffic differs", w.name());
        assert_eq!(a.tlp_histogram, b.tlp_histogram, "{} TLP differs", w.name());
    }
}

#[test]
fn rank_scale_rows_are_identical_across_thread_counts_and_batch_sizes() {
    // The rank sweep shards thousands of DPUs into SoA batches and folds
    // shard rows with order-independent operations, so its *simulated*
    // quantities must be byte-identical however the host parallelizes —
    // worker counts, batch sizes (including 0 = the per-DPU path), and
    // uneven shard splits all land on the same rows.
    let render = |rows: &[exp::RankScaleRow]| format!("{rows:#?}");
    let baseline = render(
        &exp::exp_rank_scale(&JobRunner::new(Some(1)), DatasetSize::Tiny).expect("rank sweep runs"),
    );
    for threads in [4, 8] {
        let rows = exp::exp_rank_scale(&JobRunner::new(Some(threads)), DatasetSize::Tiny).unwrap();
        assert_eq!(baseline, render(&rows), "rank rows differ at --threads {threads}");
    }
    let rt = JobRunner::new(Some(4));
    for batch in [0, 7, 32] {
        let rows = exp::exp_rank_scale_with(&rt, DatasetSize::Tiny, batch).unwrap();
        assert_eq!(baseline, render(&rows), "rank rows differ at batch size {batch}");
    }
}

#[test]
fn faulty_serving_json_is_byte_identical_across_thread_counts() {
    // Fault draws are keyed on (spec seed, round index) and outages are
    // pre-drawn, so even a campaign exercising all three failure modes —
    // transient, stuck, rank-offline — must render byte-identical
    // results JSON at any worker count.
    use pim_serve::{outcome_json, run_scenario, scenario_by_name, FaultSpec, ServeOptions};

    let scenario = scenario_by_name("faulty").unwrap();
    let spec = FaultSpec::parse(
        "seed=8,transient=70,stuck=25,timeout_us=900,outages=1,outage_ms=1,rank_dpus=4",
    )
    .unwrap();
    let doc = |threads: usize| {
        let opts =
            ServeOptions { threads: Some(threads), faults: Some(spec), ..ServeOptions::default() };
        outcome_json(&run_scenario(scenario, &opts).unwrap()).render_pretty()
    };
    let reference = doc(1);
    for threads in [4usize, 8] {
        assert!(doc(threads) == reference, "faulty serve diverged at --threads {threads}");
    }
}

#[test]
fn multi_dpu_runs_are_bit_identical() {
    for name in ["VA", "BFS", "SCAN-RSS"] {
        let w = prim_suite::workload_by_name(name).unwrap();
        let rc = RunConfig::multi(4, DpuConfig::paper_baseline(4));
        let a = w.run(DatasetSize::Tiny, &rc).unwrap();
        let b = w.run(DatasetSize::Tiny, &rc).unwrap();
        assert!((a.timeline.total_ns() - b.timeline.total_ns()).abs() < 1e-9);
        for (x, y) in a.per_dpu.iter().zip(&b.per_dpu) {
            assert_eq!(x.cycles, y.cycles, "{name} per-DPU cycles differ");
        }
    }
}
