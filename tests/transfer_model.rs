//! Transfer-model differential suite: pins the channel model v2 to the
//! legacy v1 arithmetic and to its own invariants.
//!
//! Three layers:
//!
//! 1. **Legacy identity** — under [`ChannelMode::Blocking`] (the default
//!    everywhere) every workload's timeline must be *bitwise* the serial
//!    v1 sum: `wall == to + kernel + from`, with each phase priced by the
//!    bare [`TransferConfig`] formulas. An explicit
//!    `with_channel(Blocking)` run must be indistinguishable from a
//!    default run.
//! 2. **Mode invariants on real workloads** — the v2 modes may only
//!    reshuffle CPU→DPU time: kernel and read-back phases stay bitwise
//!    identical, and the overlapped wall never exceeds the blocking one.
//! 3. **Property tests on seeded shapes** — random op sequences driven
//!    through [`Channel`] engines in lockstep, one per mode, checking
//!    the ordering and conservation laws the modes promise.
//!
//! Also pins the [`TransferConfig`] construction-time validation (typed
//! rejection of bad bandwidths; zero-byte transfers stay valid).

use pim_dpu::DpuConfig;
use pim_host::{Channel, ChannelConfig, ChannelError, ChannelMode, TransferConfig};
use pim_rng::StdRng;
use prim_suite::{extended_workloads, DatasetSize, RunConfig};

/// Tolerance for comparing two different float *summation orders* of the
/// same quantities. Identity claims use exact equality instead.
const EPS: f64 = 1e-6;

#[test]
fn blocking_is_the_v1_serial_sum_on_every_workload() {
    for w in extended_workloads() {
        let cfg = DpuConfig::paper_baseline(8);
        let run = w
            .run(DatasetSize::Tiny, &RunConfig::single(cfg.clone()))
            .unwrap_or_else(|e| panic!("{} faulted: {e}", w.name()));
        let tl = &run.timeline;
        // The blocking wall is exactly the serial phase sum — no separate
        // wall clock exists in v1, and v2's must degenerate to it.
        assert_eq!(
            tl.wall_ns(),
            tl.to_dpu_ns + tl.kernel_ns + tl.from_dpu_ns,
            "{}: blocking wall must be the serial sum",
            w.name()
        );
        // An explicit Blocking selection is byte-identical to the default.
        let explicit = w
            .run(DatasetSize::Tiny, &RunConfig::single(cfg).with_channel(ChannelMode::Blocking))
            .unwrap_or_else(|e| panic!("{} (explicit) faulted: {e}", w.name()));
        assert_eq!(tl.to_dpu_ns, explicit.timeline.to_dpu_ns, "{}", w.name());
        assert_eq!(tl.kernel_ns, explicit.timeline.kernel_ns, "{}", w.name());
        assert_eq!(tl.from_dpu_ns, explicit.timeline.from_dpu_ns, "{}", w.name());
        assert_eq!(tl.wall_ns(), explicit.timeline.wall_ns(), "{}", w.name());
    }
}

#[test]
fn v2_modes_preserve_kernel_and_readback_on_every_workload() {
    for w in extended_workloads() {
        let n_dpus = if w.supports_multi_dpu() { 4 } else { 1 };
        let mk = |mode: ChannelMode| {
            let cfg = DpuConfig::paper_baseline(8);
            let rc =
                if n_dpus == 1 { RunConfig::single(cfg) } else { RunConfig::multi(n_dpus, cfg) };
            w.run(DatasetSize::Tiny, &rc.with_channel(mode))
                .unwrap_or_else(|e| panic!("{} {}: {e}", w.name(), mode.label()))
        };
        let blocking = mk(ChannelMode::Blocking);
        for mode in [ChannelMode::Broadcast, ChannelMode::Overlapped] {
            let run = mk(mode);
            // The simulation itself is mode-independent: results stay
            // bit-exact against the reference…
            run.validation
                .as_ref()
                .unwrap_or_else(|e| panic!("{} {}: validation: {e}", w.name(), mode.label()));
            // …and so are the phases the modes may not touch: kernel time
            // and the synchronous read-back.
            assert_eq!(
                run.timeline.kernel_ns,
                blocking.timeline.kernel_ns,
                "{} {}: kernel phase must not depend on the channel mode",
                w.name(),
                mode.label()
            );
            assert_eq!(
                run.timeline.from_dpu_ns,
                blocking.timeline.from_dpu_ns,
                "{} {}: read-back stays synchronous (and asymmetric) in every mode",
                w.name(),
                mode.label()
            );
            // The v2 modes only remove transfer stalls, never add them.
            assert!(
                run.timeline.wall_ns() <= blocking.timeline.wall_ns() + EPS,
                "{} {}: wall {} exceeds blocking {}",
                w.name(),
                mode.label(),
                run.timeline.wall_ns(),
                blocking.timeline.wall_ns()
            );
            // And the wall can never beat the kernel or read-back legs.
            let floor = run.timeline.kernel_ns.max(run.timeline.from_dpu_ns);
            assert!(
                run.timeline.wall_ns() >= floor - EPS,
                "{} {}: wall {} beats its own longest leg {}",
                w.name(),
                mode.label(),
                run.timeline.wall_ns(),
                floor
            );
        }
    }
}

/// One random channel op, applied identically to every mode's engine.
#[derive(Debug, Clone)]
enum Op {
    Push(Vec<u64>),
    Broadcast(u64),
    Kernel(f64),
    Pull(u64),
}

fn random_ops(rng: &mut StdRng, n_dpus: u32) -> Vec<Op> {
    let n_ops = rng.gen_range(3..12usize);
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        ops.push(match rng.gen_range(0..4u32) {
            0 => Op::Push(
                (0..n_dpus)
                    // Zero-byte chunks stay valid no-ops at every layer.
                    .map(|_| if rng.gen_bool() { 0 } else { rng.gen_range(1..65536u64) })
                    .collect(),
            ),
            1 => Op::Broadcast(rng.gen_range(0..65536u64)),
            2 => Op::Kernel(rng.gen_range(1..100_000u64) as f64),
            _ => Op::Pull(rng.gen_range(0..16384u64)),
        });
    }
    // Always end on a pull so the overlapped engine drains.
    ops.push(Op::Pull(rng.gen_range(1..16384u64)));
    ops
}

/// Applies `op` and returns the charged duration (kernels charge their
/// own length).
fn apply(ch: &mut Channel, op: &Op) -> f64 {
    match op {
        Op::Push(chunks) => ch.push(chunks),
        Op::Broadcast(bytes) => ch.broadcast(*bytes),
        Op::Kernel(ns) => {
            ch.kernel(*ns);
            *ns
        }
        Op::Pull(bytes) => ch.pull(*bytes),
    }
}

#[test]
fn seeded_shapes_obey_the_mode_ordering_laws() {
    for seed in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(0x7261_6e6b ^ seed);
        let rank_dpus = *rng.choose(&[1u32, 4, 8, 64]);
        let n_dpus = rng.gen_range(1..2 * rank_dpus + 9);
        let ops = random_ops(&mut rng, n_dpus);

        let xfer = TransferConfig::paper();
        let mk = |mode| {
            Channel::new(
                ChannelConfig::try_new(xfer, mode, rank_dpus).expect("valid config"),
                n_dpus,
            )
        };
        let mut blocking = mk(ChannelMode::Blocking);
        let mut broadcast = mk(ChannelMode::Broadcast);
        let mut overlapped = mk(ChannelMode::Overlapped);

        let mut serial_sum = 0.0;
        let mut kernel_sum = 0.0;
        let mut pull_sum = 0.0;
        for op in &ops {
            let blocking_charge = apply(&mut blocking, op);
            let broadcast_charge = apply(&mut broadcast, op);
            let overlapped_charge = apply(&mut overlapped, op);
            serial_sum += blocking_charge;
            match op {
                Op::Kernel(ns) => kernel_sum += ns,
                Op::Pull(_) => {
                    pull_sum += blocking_charge;
                    // Read-back asymmetry is preserved in every mode: the
                    // pull is priced identically everywhere.
                    assert_eq!(blocking_charge, broadcast_charge, "seed {seed}");
                    assert_eq!(blocking_charge, overlapped_charge, "seed {seed}");
                }
                Op::Broadcast(bytes) => {
                    // A v2 broadcast can never cost more than the v1
                    // per-DPU write, let alone the per-DPU sum.
                    assert!(
                        broadcast_charge <= blocking_charge + EPS,
                        "seed {seed}: broadcast {broadcast_charge} > blocking {blocking_charge}"
                    );
                    assert!(
                        broadcast_charge * f64::from(n_dpus.min(rank_dpus))
                            <= xfer.to_dpu_ns(*bytes) * f64::from(n_dpus) + EPS,
                        "seed {seed}: broadcast exceeds the per-DPU sum"
                    );
                    assert_eq!(broadcast_charge, overlapped_charge, "seed {seed}");
                }
                Op::Push(_) => {
                    // Pushes are gated by the slowest chunk in every mode.
                    assert_eq!(blocking_charge, broadcast_charge, "seed {seed}");
                    assert_eq!(blocking_charge, overlapped_charge, "seed {seed}");
                }
            }
        }

        // Blocking: the wall is exactly the serial sum of every charge.
        assert!(
            (blocking.wall_ns() - serial_sum).abs() < EPS,
            "seed {seed}: blocking wall {} != serial sum {serial_sum}",
            blocking.wall_ns()
        );
        // Overlap never increases total virtual time…
        assert!(
            overlapped.wall_ns() <= blocking.wall_ns() + EPS,
            "seed {seed}: overlapped wall {} > blocking {}",
            overlapped.wall_ns(),
            blocking.wall_ns()
        );
        assert!(
            broadcast.wall_ns() <= blocking.wall_ns() + EPS,
            "seed {seed}: broadcast wall {} > blocking {}",
            broadcast.wall_ns(),
            blocking.wall_ns()
        );
        // …but can never hide the host-blocking legs.
        assert!(
            overlapped.wall_ns() >= kernel_sum.max(pull_sum) - EPS,
            "seed {seed}: overlapped wall {} beats its blocking legs (kernels {kernel_sum}, \
             pulls {pull_sum})",
            overlapped.wall_ns()
        );
        // The final pull drained the channel: host and wall agree.
        assert_eq!(overlapped.host_ns(), overlapped.wall_ns(), "seed {seed}");
    }
}

#[test]
fn bandwidth_validation_rejects_garbage_with_typed_errors() {
    // Bad bandwidths fail at construction, naming the direction.
    assert_eq!(
        TransferConfig::try_new(0.0, 0.063).unwrap_err(),
        ChannelError::BadBandwidth { direction: "to_dpu", gbps: 0.0 }
    );
    assert_eq!(
        TransferConfig::try_new(0.296, -2.5).unwrap_err(),
        ChannelError::BadBandwidth { direction: "from_dpu", gbps: -2.5 }
    );
    assert!(matches!(
        TransferConfig::try_new(f64::NAN, 0.063).unwrap_err(),
        ChannelError::BadBandwidth { direction: "to_dpu", .. }
    ));
    // Rank geometry is validated too.
    assert_eq!(
        ChannelConfig::try_new(TransferConfig::paper(), ChannelMode::Overlapped, 0).unwrap_err(),
        ChannelError::EmptyRank
    );
    // Unknown mode names are typed rejections, not panics.
    assert_eq!(
        ChannelMode::by_name("half-duplex").unwrap_err(),
        ChannelError::UnknownMode("half-duplex".to_string())
    );
    // Zero-byte transfers remain valid no-ops (0 ns) in every mode.
    for mode in ChannelMode::all() {
        let mut ch = Channel::new(ChannelConfig::with_mode(mode), 4);
        assert_eq!(ch.push(&[0, 0, 0, 0]), 0.0, "{mode}");
        assert_eq!(ch.broadcast(0), 0.0, "{mode}");
        assert_eq!(ch.pull(0), 0.0, "{mode}");
        assert_eq!(ch.wall_ns(), 0.0, "{mode}");
    }
}
