//! End-to-end tests of the `pimsim tune` table: the emitted document is
//! deterministic, loads back, and drives `serve --tuned`; stale or
//! mismatched tables are rejected with typed errors naming the problem
//! (mirroring the checkpoint `--resume` validation).

use std::path::PathBuf;

use pim_bench::tune::{run_tune, TuneOptions, TunedTable, TUNE_SCHEMA};
use pim_serve::scenario_by_name;

fn tmp_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pim-tune-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn quick(workloads: &[&str]) -> TuneOptions {
    TuneOptions {
        quick: true,
        threads: Some(2),
        workloads: Some(workloads.iter().map(ToString::to_string).collect()),
        ..TuneOptions::default()
    }
}

#[test]
fn tuned_table_round_trips_through_disk_and_drives_a_scenario() {
    // Tune the tiny scenario's whole mix (BS/VA from one tenant, TS from
    // the other), write the table, load it back, and resolve the entry
    // `serve tiny --tuned` would apply.
    let table = run_tune(&quick(&["BS", "VA", "TS"])).unwrap();
    let path = tmp_file("tuned-ok.json");
    std::fs::write(&path, table.to_json().render_pretty()).unwrap();

    let loaded = TunedTable::load(&path).unwrap();
    assert_eq!(loaded, table, "disk round trip is lossless");

    let tiny = scenario_by_name("tiny").unwrap();
    let entry = loaded.entry_for_scenario(tiny).unwrap();
    // All tiny share×weight scores tie at 1: the first tenant's first
    // mix entry wins deterministically.
    assert_eq!(entry.workload, "BS");
    assert!(pim_serve::policy_by_name(&entry.policy).is_some(), "policy is servable");
    assert!(entry.tasklets > 0 && entry.n_dpus > 0);
    assert!(
        entry.wall_ns <= entry.blocking_wall_ns,
        "the tuned point can never lose to a blocking point of its own grid"
    );
}

#[test]
fn tuned_tables_are_byte_identical_across_thread_counts() {
    let render = |threads: usize| {
        let opts = TuneOptions { threads: Some(threads), ..quick(&["VA", "TS"]) };
        run_tune(&opts).unwrap().to_json().render_pretty()
    };
    let serial = render(1);
    assert_eq!(serial, render(8), "the tuned table is a pure function of (workloads, grid, size)");
}

#[test]
fn stale_or_mismatched_tables_are_rejected_with_typed_errors() {
    // A table from a hypothetical older tuner: wrong schema tag.
    let stale = tmp_file("tuned-stale.json");
    std::fs::write(&stale, r#"{"schema": "pim-tune/0", "size": "tiny", "workloads": []}"#).unwrap();
    let err = TunedTable::load(&stale).unwrap_err();
    assert!(err.contains("schema") && err.contains(TUNE_SCHEMA), "names both schemas: {err}");

    // Not JSON at all.
    let garbage = tmp_file("tuned-garbage.json");
    std::fs::write(&garbage, "not json").unwrap();
    assert!(TunedTable::load(&garbage).unwrap_err().contains("not JSON"));

    // Unreadable path: the error carries the path.
    let missing = tmp_file("does-not-exist.json");
    let err = TunedTable::load(&missing).unwrap_err();
    assert!(err.contains("could not read"), "{err}");

    // A well-formed table naming a policy the scheduler registry does
    // not know is rejected at load, not at serve time.
    let bad_policy = tmp_file("tuned-bad-policy.json");
    std::fs::write(
        &bad_policy,
        format!(
            r#"{{"schema": "{TUNE_SCHEMA}", "size": "tiny", "workloads": [
              {{"workload": "VA", "family": "dense", "tasklets": 16, "n_dpus": 1,
                "channel": "overlapped", "policy": "round_robin",
                "wall_ns": 10.0, "blocking_wall_ns": 12.0, "speedup": 1.2}}]}}"#
        ),
    )
    .unwrap();
    let err = TunedTable::load(&bad_policy).unwrap_err();
    assert!(err.contains("round_robin"), "names the unknown policy: {err}");

    // So is an unknown channel label.
    let bad_mode = tmp_file("tuned-bad-mode.json");
    std::fs::write(
        &bad_mode,
        format!(
            r#"{{"schema": "{TUNE_SCHEMA}", "size": "tiny", "workloads": [
              {{"workload": "VA", "family": "dense", "tasklets": 16, "n_dpus": 1,
                "channel": "warp", "policy": "fifo",
                "wall_ns": 10.0, "blocking_wall_ns": 12.0, "speedup": 1.2}}]}}"#
        ),
    )
    .unwrap();
    assert!(TunedTable::load(&bad_mode).unwrap_err().contains("warp"));
}

#[test]
fn a_table_missing_scenario_coverage_is_rejected_by_name() {
    // Tuned for VA only: the tiny scenario also mixes BS and TS, so the
    // lookup must refuse the whole table and say which workloads are
    // uncovered — silently tuning part of a scenario would be worse
    // than not tuning it.
    let table = run_tune(&quick(&["VA"])).unwrap();
    let tiny = scenario_by_name("tiny").unwrap();
    let err = table.entry_for_scenario(tiny).unwrap_err();
    assert!(err.contains("BS") && err.contains("TS"), "lists the gaps: {err}");
    assert!(err.contains("tiny"), "names the scenario: {err}");
    assert!(!err.contains("VA"), "covered workloads are not flagged: {err}");
}
