//! The failure-mode differential suite: fault injection, retry
//! re-dispatch, degraded-capacity operation, and checkpoint/restore of
//! the serving loop.
//!
//! The load-bearing properties, each pinned byte-for-byte where bytes
//! are the contract:
//!
//! 1. **Fault-free reduction** — a present-but-empty `FaultSpec` renders
//!    results JSON identical to no spec at all: the fault machinery costs
//!    nothing when disarmed.
//! 2. **Conservation** — every admitted request ends exactly once, as
//!    completed or failed; retries neither duplicate nor lose work.
//! 3. **Resume equivalence** — checkpoint at T, rebuild from the JSON
//!    text, continue: the final results document is byte-identical to
//!    the uninterrupted run, across seeds and policies.
//! 4. **Degradation without deadlock** — rank outages shrink capacity
//!    (and are visible in the `degraded` column) but the loop always
//!    terminates, even when every rank is briefly offline.

use pim_serve::{
    outcome_json, resume_scenario, run_scenario, run_scenario_with_checkpoints, scenario_by_name,
    Checkpoint, FaultSpec, ServeOptions,
};
use pimulator::report::Json;

fn opts(threads: usize) -> ServeOptions {
    ServeOptions { threads: Some(threads), ..ServeOptions::default() }
}

#[test]
fn empty_fault_spec_is_byte_identical_to_no_spec() {
    for name in ["tiny", "faulty", "saturate"] {
        let scenario = scenario_by_name(name).unwrap();
        let without = run_scenario(scenario, &opts(2)).unwrap();
        let with =
            run_scenario(scenario, &ServeOptions { faults: Some(FaultSpec::none()), ..opts(2) })
                .unwrap();
        assert!(
            outcome_json(&without).render_pretty() == outcome_json(&with).render_pretty(),
            "{name}: FaultSpec::none() must be indistinguishable from no fault plan"
        );
    }
}

#[test]
fn injected_faults_surface_as_typed_errors_at_the_launch_boundary() {
    // The serving loop consumes faults at the dispatch layer, but the
    // underlying host boundary reports them as typed `SimError`s, not
    // panics — the contract the runtime's retry logic builds on.
    use pim_host::{PimSystem, TransferConfig};
    use pimulator::pim_dpu::{DpuConfig, FaultKind, SimError};

    let program = pim_asm::assemble(".text\n movi r0, 7\n stop\n").unwrap();
    let mut sys = PimSystem::new(3, DpuConfig::paper_baseline(1), TransferConfig::paper());
    sys.load(&program).unwrap();
    sys.dpu_mut(1).arm_fault(FaultKind::Stuck { timeout_ns: 500 });
    let results = sys.launch_each();
    assert!(results[0].is_ok() && results[2].is_ok());
    assert_eq!(
        results[1].as_ref().unwrap_err(),
        &SimError::DpuStuck { dpu: 1, timeout_ns: 500 },
        "an armed fault must fail its own DPU, typed, without poisoning neighbours"
    );
}

#[test]
fn every_admitted_request_ends_exactly_once() {
    let scenario = scenario_by_name("faulty").unwrap();
    for seed in [1u64, 7, 42] {
        for spec_text in [
            "seed=3,transient=120",
            "seed=3,transient=80,stuck=40,timeout_us=1000",
            "seed=3,transient=60,retries=1",
            "seed=3,transient=200,retries=0",
            "seed=3,transient=50,outages=2,outage_ms=1,rank_dpus=4",
        ] {
            let spec = FaultSpec::parse(spec_text).unwrap();
            let out = run_scenario(scenario, &ServeOptions { seed, faults: Some(spec), ..opts(2) })
                .unwrap();
            assert_eq!(out.offered(), out.admitted() + out.rejected());
            assert_eq!(
                out.admitted(),
                out.completed() + out.failed(),
                "seed {seed} spec `{spec_text}`: requests leaked or duplicated"
            );
            // Completions alone populate the latency histograms.
            for t in &out.tenants {
                assert_eq!(t.latency.total.count(), t.completed);
            }
        }
    }
}

#[test]
fn checkpoint_resume_matches_the_uninterrupted_run_byte_for_byte() {
    let scenario = scenario_by_name("faulty").unwrap();
    let spec = FaultSpec::parse(
        "seed=5,transient=70,stuck=20,timeout_us=800,outages=1,outage_ms=1,rank_dpus=4",
    )
    .unwrap();
    for seed in [1u64, 2, 3] {
        for policy in ["fifo", "weighted_fair"] {
            let run_opts = ServeOptions {
                seed,
                policy: Some(policy.to_string()),
                faults: Some(spec),
                ..opts(2)
            };
            let uninterrupted =
                outcome_json(&run_scenario(scenario, &run_opts).unwrap()).render_pretty();

            let mut cuts: Vec<Checkpoint> = Vec::new();
            let full = run_scenario_with_checkpoints(scenario, &run_opts, 1, &mut |ck| {
                cuts.push(
                    Checkpoint::from_json(&Json::parse(&ck.to_json().render_pretty()).unwrap())
                        .unwrap(),
                );
            })
            .unwrap();
            assert!(
                outcome_json(&full).render_pretty() == uninterrupted,
                "emitting checkpoints must not perturb the run"
            );
            assert!(!cuts.is_empty(), "a 1 ms cadence over a 5 ms run must cut checkpoints");

            // Resume from *every* cut, not just a lucky one; each must
            // land on the identical final document.
            for (k, ck) in cuts.iter().enumerate() {
                ck.validate(
                    scenario.name,
                    policy,
                    seed,
                    run_opts.load,
                    pim_serve::resolved_duration_ns(scenario, &run_opts),
                    &pim_serve::fault_label(&run_opts),
                    pim_serve::channel_label(&run_opts),
                )
                .unwrap_or_else(|e| panic!("cut {k} fails validation: {e}"));
                let resumed = resume_scenario(scenario, &run_opts, ck, 0, &mut |_| {}).unwrap();
                assert!(
                    outcome_json(&resumed).render_pretty() == uninterrupted,
                    "seed {seed} policy {policy}: resume from cut {k} diverged"
                );
            }
        }
    }
}

#[test]
fn checkpoint_validation_rejects_a_different_run() {
    let scenario = scenario_by_name("faulty").unwrap();
    let run_opts = ServeOptions { seed: 9, faults: Some(FaultSpec::none()), ..opts(1) };
    let mut cuts: Vec<Checkpoint> = Vec::new();
    run_scenario_with_checkpoints(scenario, &run_opts, 1, &mut |ck| cuts.push(ck.clone())).unwrap();
    let ck = cuts.first().expect("at least one cut");
    let duration = pim_serve::resolved_duration_ns(scenario, &run_opts);
    let label = pim_serve::fault_label(&run_opts);
    let chan = pim_serve::channel_label(&run_opts);
    assert!(ck.validate("faulty", "fifo", 9, 1.0, duration, &label, chan).is_ok());
    assert!(ck.validate("faulty", "fifo", 10, 1.0, duration, &label, chan).is_err(), "wrong seed");
    assert!(ck.validate("faulty", "fifo", 9, 2.0, duration, &label, chan).is_err(), "wrong load");
    assert!(
        ck.validate("faulty", "fifo", 9, 1.0, duration, "seed=1,transient=1", chan).is_err(),
        "wrong fault campaign"
    );
    assert!(
        ck.validate("faulty", "fifo", 9, 1.0, duration, &label, "overlapped").is_err(),
        "wrong channel mode"
    );
}

#[test]
fn rank_outages_degrade_throughput_but_never_deadlock() {
    let scenario = scenario_by_name("faulty").unwrap();
    let clean = run_scenario(scenario, &opts(2)).unwrap();

    // Half the rank goes away, twice.
    let half = FaultSpec::parse("seed=2,outages=2,outage_ms=1,rank_dpus=4").unwrap();
    let degraded = run_scenario(scenario, &ServeOptions { faults: Some(half), ..opts(2) }).unwrap();
    assert!(degraded.degraded() > 0, "completions during an outage must be marked degraded");
    assert_eq!(degraded.admitted(), degraded.completed() + degraded.failed());
    assert!(
        degraded.rounds >= clean.rounds,
        "losing capacity cannot finish the same work in fewer rounds \
         (clean {}, degraded {})",
        clean.rounds,
        degraded.rounds
    );

    // The whole machine goes away (one rank spans all 8 DPUs): the loop
    // must stall to the rejoin and still drain everything — this test
    // completing *is* the no-deadlock assertion.
    let total = FaultSpec::parse("seed=4,outages=3,outage_ms=1,rank_dpus=8").unwrap();
    let stalled = run_scenario(scenario, &ServeOptions { faults: Some(total), ..opts(2) }).unwrap();
    assert_eq!(stalled.admitted(), stalled.completed() + stalled.failed());
}
