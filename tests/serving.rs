//! Integration tests of the serving runtime: byte-identical results at
//! any worker count, conservation of the admission accounting, and
//! weighted-fair service shares under saturation.

use pim_serve::{outcome_json, run_scenario, scenario_by_name, ServeOptions};

fn opts(threads: usize) -> ServeOptions {
    ServeOptions { threads: Some(threads), ..ServeOptions::default() }
}

#[test]
fn serving_json_is_byte_identical_across_worker_counts() {
    let scenario = scenario_by_name("tiny").unwrap();
    let reference = outcome_json(&run_scenario(scenario, &opts(1)).unwrap()).render_pretty();
    for threads in [4usize, 8] {
        let got = outcome_json(&run_scenario(scenario, &opts(threads)).unwrap()).render_pretty();
        assert!(got == reference, "serve tiny at --threads {threads} diverged from the serial run");
    }
}

#[test]
fn extension_scenarios_are_byte_identical_across_worker_counts() {
    // The sparse (gather-heavy BSR mix) and inference (chained-kernel
    // NN mix) scenarios must replay byte-identically at any --threads,
    // like every other scenario.
    for name in ["sparse", "inference"] {
        let scenario = scenario_by_name(name).unwrap();
        let reference = outcome_json(&run_scenario(scenario, &opts(1)).unwrap()).render_pretty();
        for threads in [4usize, 8] {
            let got =
                outcome_json(&run_scenario(scenario, &opts(threads)).unwrap()).render_pretty();
            assert!(
                got == reference,
                "serve {name} at --threads {threads} diverged from the serial run"
            );
        }
    }
}

#[test]
fn extension_scenarios_complete_work_for_every_tenant() {
    for name in ["sparse", "inference"] {
        let scenario = scenario_by_name(name).unwrap();
        let out = run_scenario(scenario, &opts(2)).unwrap();
        assert_eq!(out.offered(), out.admitted() + out.rejected());
        for t in &out.tenants {
            assert!(t.completed > 0, "serve {name}: tenant {} completed nothing", t.name);
        }
    }
}

#[test]
fn different_seeds_give_different_traffic() {
    let scenario = scenario_by_name("tiny").unwrap();
    let a = run_scenario(scenario, &opts(2)).unwrap();
    let b = run_scenario(scenario, &ServeOptions { seed: 7, ..opts(2) }).unwrap();
    assert_ne!(
        (a.offered(), a.rounds),
        (b.offered(), b.rounds),
        "seed must steer the arrival schedule"
    );
}

#[test]
fn admission_accounting_is_conserved_under_overload() {
    let scenario = scenario_by_name("saturate").unwrap();
    let out = run_scenario(scenario, &ServeOptions { load: 4.0, ..opts(2) }).unwrap();
    assert_eq!(out.offered(), out.admitted() + out.rejected());
    assert_eq!(out.admitted(), out.completed(), "admitted requests all complete (drain phase)");
    assert!(out.rejected() > 0, "overload must produce counted rejects");
    for t in &out.tenants {
        assert_eq!(t.admission.offered, t.admission.admitted + t.admission.rejected());
        assert_eq!(t.latency.total.count(), t.completed);
    }
    assert_eq!(out.metrics.get("serve_offered"), out.offered());
    assert_eq!(
        out.metrics.get("serve_rejected_quota"),
        out.tenants.iter().map(|t| t.admission.rejected_quota).sum::<u64>()
    );
}

#[test]
fn weighted_fair_shares_track_weights_under_saturation() {
    // `saturate` offers gold and bronze equal traffic but weights them
    // 3:1; under sustained backlog the *completed* shares must follow
    // the weights, not the arrivals.
    let scenario = scenario_by_name("saturate").unwrap();
    let out = run_scenario(scenario, &ServeOptions { load: 4.0, ..opts(2) }).unwrap();
    let gold = out.tenants[0].completed as f64;
    let bronze = out.tenants[1].completed as f64;
    assert!(bronze > 0.0, "bronze must not starve");
    let ratio = gold / bronze;
    assert!(
        (2.2..=3.8).contains(&ratio),
        "completed share {gold}:{bronze} (ratio {ratio:.2}) strayed from the 3:1 weights"
    );
}

#[test]
fn overload_bends_the_latency_curve_but_not_the_transfer_split() {
    let scenario = scenario_by_name("tiny").unwrap();
    let light = run_scenario(scenario, &ServeOptions { load: 0.25, ..opts(2) }).unwrap();
    let heavy = run_scenario(scenario, &ServeOptions { load: 8.0, ..opts(2) }).unwrap();
    let p99 = |o: &pim_serve::ServeOutcome| o.aggregate_latency().total.quantile_ns(0.99);
    assert!(p99(&heavy) > p99(&light), "queueing under overload must raise p99");
    // The execute phase is load-independent: the same compositions cost
    // the same cycles no matter how long the queue is.
    let exec_p50 = |o: &pim_serve::ServeOutcome| o.aggregate_latency().execute.quantile_ns(0.5);
    let (l, h) = (exec_p50(&light), exec_p50(&heavy));
    assert!(
        l > 0 && h > 0 && h < l * 8,
        "execute phase should not explode with load (light {l}, heavy {h})"
    );
}

#[test]
fn overlapped_channel_conserves_while_shifting_transfer_latency_down() {
    use pim_host::ChannelMode;

    // Same scenario, seed, and load under the blocking and overlapped
    // channel modes: the arrival schedule and the conservation law are
    // channel-independent, while the per-tenant *transfer* latencies
    // shift down (overlap hides CPU→DPU time under kernels) and the
    // queue/transfer/execute split stays internally consistent.
    let scenario = scenario_by_name("demo").unwrap();
    let blocking = run_scenario(scenario, &opts(2)).unwrap();
    let overlapped =
        run_scenario(scenario, &ServeOptions { channel: ChannelMode::Overlapped, ..opts(2) })
            .unwrap();

    assert_eq!(blocking.offered(), overlapped.offered(), "arrivals are channel-independent");
    for out in [&blocking, &overlapped] {
        assert_eq!(out.admitted(), out.completed() + out.failed(), "conservation");
        assert!(out.completed() > 0);
        for t in &out.tenants {
            if t.latency.total.count() == 0 {
                continue;
            }
            // The recorded split is internally consistent: the phase
            // means sum to the total mean (each total is recorded as the
            // sum of its three phases).
            let split_sum = t.latency.queue.mean_ns()
                + t.latency.transfer.mean_ns()
                + t.latency.execute.mean_ns();
            let total = t.latency.total.mean_ns();
            assert!(
                (split_sum - total).abs() <= total * 1e-9 + 1.0,
                "tenant {}: phase means {split_sum} do not sum to total {total}",
                t.name
            );
        }
    }

    // Transfer stalls shrink: aggregate p50 must not grow, and the run
    // as a whole must hide a strictly positive amount of transfer time.
    let p50 = |o: &pim_serve::ServeOutcome| o.aggregate_latency().transfer.quantile_ns(0.5);
    assert!(
        p50(&overlapped) <= p50(&blocking),
        "overlapped transfer p50 {} exceeds blocking {}",
        p50(&overlapped),
        p50(&blocking)
    );
    let mean = |o: &pim_serve::ServeOutcome| o.aggregate_latency().transfer.mean_ns();
    assert!(
        mean(&overlapped) < mean(&blocking),
        "overlap must hide some transfer time (overlapped {} vs blocking {})",
        mean(&overlapped),
        mean(&blocking)
    );
}
