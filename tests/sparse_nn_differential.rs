//! Differential pinning of the extension families (sparse BSR and
//! quantized NN-inference) across every executor path.
//!
//! The four extension kernels stress exactly the corners the dense suite
//! does not: irregular gather DMA at data-dependent addresses (SpMV-BSR,
//! SpMM-BSR) and *chained* kernel launches with host-side staging between
//! phases (MLP-Q, ATTN). Each leg must produce byte-identical outputs —
//! every workload validates its DPU results against the host oracle — and
//! the naive, fast, and SoA-batched executors must agree on the full
//! timing statistics, at 1, 8, and 16 tasklets.

use pim_dpu::{DpuConfig, IlpFeatures};
use prim_suite::{nn_workloads, sparse_workloads, DatasetSize, RunConfig, Workload};

const TASKLETS: [u32; 3] = [1, 8, 16];

fn extension_workloads() -> Vec<Box<dyn Workload>> {
    let mut v = sparse_workloads();
    v.extend(nn_workloads());
    v
}

/// Runs one workload with both cycle loops and asserts validation passes
/// and the per-DPU stats are identical field-for-field.
fn assert_loops_agree(w: &dyn Workload, mode: &str, cfg: DpuConfig) {
    let fast = w
        .run(DatasetSize::Tiny, &RunConfig::single(cfg.clone()))
        .unwrap_or_else(|e| panic!("{} [{mode}] optimized run failed: {e}", w.name()));
    fast.validation
        .as_ref()
        .unwrap_or_else(|e| panic!("{} [{mode}] output failed validation: {e}", w.name()));
    let naive = w
        .run(DatasetSize::Tiny, &RunConfig::single(cfg.with_naive_loop()))
        .unwrap_or_else(|e| panic!("{} [{mode}] naive run failed: {e}", w.name()));
    naive
        .validation
        .as_ref()
        .unwrap_or_else(|e| panic!("{} [{mode}] naive output failed validation: {e}", w.name()));
    assert_eq!(fast.per_dpu.len(), naive.per_dpu.len(), "{} [{mode}]: DPU count differs", w.name());
    for (i, (f, n)) in fast.per_dpu.iter().zip(&naive.per_dpu).enumerate() {
        assert_eq!(
            format!("{f:?}"),
            format!("{n:?}"),
            "{} [{mode}] dpu {i}: naive and fast loops disagree",
            w.name()
        );
    }
}

#[test]
fn extension_scalar_loop_matches_naive_reference() {
    for w in extension_workloads() {
        for n in TASKLETS {
            assert_loops_agree(w.as_ref(), "scalar", DpuConfig::paper_baseline(n));
        }
    }
}

#[test]
fn extension_ilp_loop_matches_naive_reference() {
    for w in extension_workloads() {
        for n in TASKLETS {
            let cfg = DpuConfig::paper_baseline(n).with_ilp(IlpFeatures::all());
            assert_loops_agree(w.as_ref(), "ilp", cfg);
        }
    }
}

/// 4 DPUs through the per-DPU path and the SoA batched executor
/// (`batch_dpus = 3`: one 3-member batch plus a singleton). The chained
/// kernels re-enter `run_batch` once per launch, so batch scheduling state
/// must survive the host staging round-trips too.
#[test]
fn extension_batched_executor_matches_per_dpu_path() {
    const DPUS: u32 = 4;
    for w in extension_workloads() {
        for n in TASKLETS {
            let cfg = DpuConfig::paper_baseline(n);
            let per_dpu = w
                .run(DatasetSize::Tiny, &RunConfig::multi(DPUS, cfg.clone()))
                .unwrap_or_else(|e| panic!("{} per-DPU run failed: {e}", w.name()));
            let batched = w
                .run(DatasetSize::Tiny, &RunConfig::multi(DPUS, cfg.with_batched(3)))
                .unwrap_or_else(|e| panic!("{} batched run failed: {e}", w.name()));
            batched
                .validation
                .as_ref()
                .unwrap_or_else(|e| panic!("{} batched output failed validation: {e}", w.name()));
            assert_eq!(
                per_dpu.per_dpu.len(),
                batched.per_dpu.len(),
                "{}: DPU count differs",
                w.name()
            );
            for (i, (p, b)) in per_dpu.per_dpu.iter().zip(&batched.per_dpu).enumerate() {
                assert_eq!(
                    format!("{p:?}"),
                    format!("{b:?}"),
                    "{} dpu {i}: batched stats diverge from per-DPU path",
                    w.name()
                );
            }
        }
    }
}
