//! Invariants of the figure-regeneration harness at the Tiny size: every
//! experiment returns complete, internally consistent rows.

use pimulator::experiments::*;
use pimulator::jobs::JobRunner;
use prim_suite::DatasetSize;

const N_WORKLOADS: usize = 16;

#[test]
fn fig05_covers_every_workload_and_thread_count() {
    let rows = fig05_utilization(&JobRunner::default(), DatasetSize::Tiny, &[1, 16]).unwrap();
    assert_eq!(rows.len(), N_WORKLOADS * 2);
    for r in &rows {
        assert!((0.0..=1.0 + 1e-9).contains(&r.compute_util), "{}", r.workload);
        assert!(r.mem_util >= 0.0);
    }
    // 1-thread compute utilization is pinned near 1/11 by the revolver.
    for r in rows.iter().filter(|r| r.threads == 1) {
        assert!(
            r.compute_util < 0.12,
            "{}: 1-thread util {:.3} cannot exceed the revolver bound",
            r.workload,
            r.compute_util
        );
    }
}

#[test]
fn fig06_fractions_sum_to_one() {
    let rows = fig06_breakdown(&JobRunner::default(), DatasetSize::Tiny, &[16]).unwrap();
    assert_eq!(rows.len(), N_WORKLOADS);
    for r in rows {
        let sum = r.active + r.idle_memory + r.idle_revolver + r.idle_rf;
        assert!((sum - 1.0).abs() < 1e-6, "{}: breakdown sums to {sum}", r.workload);
    }
}

#[test]
fn fig07_histogram_fractions_sum_to_one() {
    let rows = fig07_tlp_histogram(&JobRunner::default(), DatasetSize::Tiny, 16).unwrap();
    assert_eq!(rows.len(), N_WORKLOADS);
    for r in rows {
        let sum: f64 = r.fractions.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "{}: histogram sums to {sum}", r.workload);
        assert!(r.mean >= 0.0 && r.mean <= 16.0);
    }
}

#[test]
fn fig08_produces_the_three_paper_traces() {
    let rows = fig08_tlp_timeline(&JobRunner::default(), DatasetSize::Tiny, 16).unwrap();
    let names: Vec<&str> = rows.iter().map(|r| r.workload.as_str()).collect();
    assert_eq!(names, ["BS", "GEMV", "SCAN-SSA"]);
    for r in rows {
        assert_eq!(r.window, 10_000);
    }
}

#[test]
fn fig09_mixes_sum_to_one() {
    let rows = fig09_instr_mix(&JobRunner::default(), DatasetSize::Tiny, &[16]).unwrap();
    for r in rows {
        let sum: f64 = r.fractions.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "{}: mix sums to {sum}", r.workload);
    }
}

#[test]
fn fig10_speedups_are_relative_to_one_dpu() {
    let rows = fig10_strong_scaling(&JobRunner::default(), DatasetSize::Tiny, &[1, 4], 8).unwrap();
    for r in rows.iter().filter(|r| r.n_dpus == 1) {
        assert!((r.speedup - 1.0).abs() < 1e-9, "{}", r.workload);
    }
    for r in &rows {
        assert!(r.to_dpu_ns >= 0.0 && r.kernel_ns > 0.0 && r.from_dpu_ns >= 0.0);
    }
}

#[test]
fn fig12_base_rows_have_unit_speedup() {
    let rows = fig12_ilp_ablation(&JobRunner::default(), DatasetSize::Tiny, 16).unwrap();
    assert_eq!(rows.len(), N_WORKLOADS * 5);
    for r in rows.iter().filter(|r| r.label == "Base") {
        assert!((r.speedup - 1.0).abs() < 1e-9, "{}", r.workload);
    }
    // The full ladder must help on average (the paper reports avg 2.7x).
    let drsf: Vec<f64> =
        rows.iter().filter(|r| r.label == "Base+DRSF").map(|r| r.speedup).collect();
    let avg = drsf.iter().sum::<f64>() / drsf.len() as f64;
    assert!(avg > 1.3, "average DRSF speedup {avg:.2} too small");
}

#[test]
fn fig15_covers_cache_capable_workloads() {
    let rows = fig15_cache_vs_scratchpad(&JobRunner::default(), DatasetSize::Tiny, &[16]).unwrap();
    assert_eq!(rows.len(), N_WORKLOADS);
    for r in rows {
        assert!(r.normalized_time > 0.0, "{}", r.workload);
    }
}
