//! Golden-snapshot tests: the committed `results/golden/*.json` documents
//! must regenerate **byte-identically** — same simulation results, same
//! float shortest-round-trip rendering, same key order — regardless of
//! worker count (the job engine restores job order) or host.
//!
//! If a change legitimately shifts the numbers, regenerate with:
//!
//! ```text
//! cargo run --release -p pim-cli --bin pimsim -- \
//!     exp <name> --size tiny --json --out results/golden
//! ```
//!
//! and review the diff like any other code change.

use std::path::Path;

use pim_bench::{experiment_by_name, run_experiment, DriverOptions};
use prim_suite::DatasetSize;

fn check_golden(name: &str) {
    let e = experiment_by_name(name).unwrap_or_else(|| panic!("unknown experiment {name}"));
    let opts = DriverOptions {
        size: Some(DatasetSize::Tiny),
        threads: Some(2),
        ..DriverOptions::default()
    };
    let report = run_experiment(e, &opts).unwrap_or_else(|e| panic!("{name} faulted: {e}"));
    let got = report.json.render_pretty();

    let path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("results/golden").join(format!("{name}.json"));
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("golden {} unreadable: {e}", path.display()));
    assert!(
        got == want,
        "{name}: regeneration is not byte-identical to {} — if the change is intended, \
         regenerate the golden (see this file's header) and review the diff",
        path.display()
    );
}

#[test]
fn fig05_regenerates_byte_identically() {
    check_golden("fig05_utilization");
}

#[test]
fn fig12_regenerates_byte_identically() {
    check_golden("fig12_ilp_ablation");
}

#[test]
fn exp_serving_regenerates_byte_identically() {
    check_golden("exp_serving");
}

#[test]
fn exp_serving_faults_regenerates_byte_identically() {
    check_golden("exp_serving_faults");
}

#[test]
fn exp_sparse_nn_regenerates_byte_identically() {
    check_golden("exp_sparse_nn");
}

#[test]
fn exp_transfer_study_regenerates_byte_identically() {
    check_golden("exp_transfer_study");
}

#[test]
fn goldens_are_independent_of_worker_count() {
    let e = experiment_by_name("fig05_utilization").unwrap();
    let base = DriverOptions { size: Some(DatasetSize::Tiny), ..DriverOptions::default() };
    let serial = run_experiment(e, &DriverOptions { threads: Some(1), ..base.clone() }).unwrap();
    let parallel = run_experiment(e, &DriverOptions { threads: Some(8), ..base }).unwrap();
    assert_eq!(serial.json.render_pretty(), parallel.json.render_pretty());
}
