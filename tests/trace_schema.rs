//! Trace-schema validation: a traced experiment must produce a
//! well-formed Chrome trace-event document — parseable JSON of the
//! expected shape, with per-track monotonic timestamps and balanced
//! `B`/`E` duration pairs — end to end through the real driver path
//! (experiment → job engine → ring sinks → exporter → JSON text).

use std::collections::BTreeMap;
use std::path::PathBuf;

use pim_bench::{experiment_by_name, run_experiment_with_traces, DriverOptions};
use pimulator::report::Json;
use pimulator::trace::chrome_trace;
use prim_suite::DatasetSize;

fn field<'j>(ev: &'j Json, key: &str) -> Option<&'j Json> {
    match ev {
        Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn as_u64(j: &Json) -> u64 {
    match j {
        Json::UInt(u) => *u,
        other => panic!("expected unsigned integer, got {other:?}"),
    }
}

fn as_f64(j: &Json) -> f64 {
    match j {
        Json::Num(x) => *x,
        Json::UInt(u) => *u as f64,
        Json::Int(i) => *i as f64,
        other => panic!("expected number, got {other:?}"),
    }
}

#[test]
fn traced_fig05_produces_a_valid_chrome_trace() {
    let e = experiment_by_name("fig05_utilization").unwrap();
    let opts = DriverOptions {
        size: Some(DatasetSize::Tiny),
        threads: None, // all cores — per-job traces are scheduling-independent
        trace: Some(PathBuf::from("unused: tracing is keyed on Some")),
        ..DriverOptions::default()
    };
    let (_, traces) = run_experiment_with_traces(e, &opts).unwrap();
    assert!(!traces.is_empty(), "traced run must harvest job traces");

    // Round-trip through the actual JSON text, exactly as written to disk.
    let rendered = chrome_trace(&traces).render_pretty();
    let doc = Json::parse(&rendered).expect("trace document parses");

    let Json::Obj(pairs) = &doc else { panic!("document must be an object") };
    assert_eq!(pairs[0].0, "traceEvents");
    assert_eq!(
        pairs.iter().find(|(k, _)| k == "displayTimeUnit").map(|(_, v)| v),
        Some(&Json::from("ms"))
    );
    let Json::Arr(events) = &pairs[0].1 else { panic!("traceEvents must be an array") };
    assert!(!events.is_empty());

    let mut depth: BTreeMap<(u64, u64), i64> = BTreeMap::new();
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    let mut phases_seen: BTreeMap<String, u64> = BTreeMap::new();
    for ev in events {
        let ph = match field(ev, "ph").expect("every event has ph") {
            Json::Str(s) => s.clone(),
            other => panic!("ph not a string: {other:?}"),
        };
        *phases_seen.entry(ph.clone()).or_default() += 1;
        let key = (as_u64(field(ev, "pid").expect("pid")), as_u64(field(ev, "tid").expect("tid")));
        if ph == "M" {
            // Metadata events carry args.name and no timestamp.
            assert!(field(ev, "args").is_some(), "metadata without args");
            continue;
        }
        let ts = as_f64(field(ev, "ts").expect("timed event has ts"));
        assert!(ts.is_finite() && ts >= 0.0, "bad ts {ts}");
        if let Some(prev) = last_ts.insert(key, ts) {
            assert!(ts >= prev, "ts regressed on track {key:?}: {prev} -> {ts}");
        }
        match ph.as_str() {
            "B" => *depth.entry(key).or_default() += 1,
            "E" => {
                let d = depth.entry(key).or_default();
                *d -= 1;
                assert!(*d >= 0, "E without a matching B on track {key:?}");
            }
            "X" => {
                let dur = as_f64(field(ev, "dur").expect("X has dur"));
                assert!(dur >= 0.0 && dur.is_finite());
            }
            "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(depth.values().all(|&d| d == 0), "unbalanced B/E on tracks: {depth:?}");

    // The shape we promise: metadata, complete events, and instants are
    // all present in a real workload sweep.
    for ph in ["M", "X", "i"] {
        assert!(phases_seen.contains_key(ph), "no {ph} events; saw {phases_seen:?}");
    }
}
