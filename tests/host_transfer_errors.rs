//! Error-path pinning for the host runtime's fallible transfer APIs.
//!
//! `try_copy_to_mram` / `try_copy_from_mram` must reject an out-of-range
//! DPU index with [`SimError::BadDpuIndex`], and the parallel batch
//! transfers `try_push_to_mram` / `try_push_to_symbol` must reject a
//! mis-sized batch with [`SimError::ChunkCountMismatch`] — in both cases
//! without touching any DPU state or advancing the host timeline. The Ok
//! paths are pinned alongside so the fallible wrappers stay equivalent to
//! their panicking counterparts.

use pim_asm::KernelBuilder;
use pim_dpu::{DpuConfig, SimError};
use pim_host::{PimSystem, TransferConfig};

const N_DPUS: u32 = 3;

fn system() -> PimSystem {
    PimSystem::new(N_DPUS, DpuConfig::paper_baseline(1), TransferConfig::default())
}

#[test]
fn try_copy_to_mram_rejects_a_bad_dpu_index() {
    let mut sys = system();
    assert_eq!(
        sys.try_copy_to_mram(N_DPUS, 0, &[1, 2, 3, 4]),
        Err(SimError::BadDpuIndex { dpu: N_DPUS, n_dpus: N_DPUS })
    );
    assert_eq!(
        sys.try_copy_to_mram(u32::MAX, 0, &[]),
        Err(SimError::BadDpuIndex { dpu: u32::MAX, n_dpus: N_DPUS })
    );
    // In-range indices (all of them) succeed.
    for dpu in 0..N_DPUS {
        sys.try_copy_to_mram(dpu, 64, &[dpu as u8; 8]).unwrap();
    }
}

#[test]
fn try_copy_from_mram_rejects_a_bad_dpu_index() {
    let mut sys = system();
    assert_eq!(
        sys.try_copy_from_mram(N_DPUS, 0, 8).unwrap_err(),
        SimError::BadDpuIndex { dpu: N_DPUS, n_dpus: N_DPUS }
    );
    // Round-trip through the Ok paths: what was pushed comes back.
    sys.try_copy_to_mram(1, 128, &[0xAB; 16]).unwrap();
    assert_eq!(sys.try_copy_from_mram(1, 128, 16).unwrap(), vec![0xAB; 16]);
    // The failed copy must not have written DPU 2.
    assert_eq!(sys.try_copy_from_mram(2, 128, 16).unwrap(), vec![0u8; 16]);
}

#[test]
fn try_push_to_mram_rejects_a_mis_sized_batch() {
    let mut sys = system();
    let chunk: &[u8] = &[7; 8];
    // One chunk short and one chunk over: both batch-sizing errors.
    assert_eq!(
        sys.try_push_to_mram(0, &[chunk; 2]),
        Err(SimError::ChunkCountMismatch { chunks: 2, n_dpus: N_DPUS })
    );
    assert_eq!(
        sys.try_push_to_mram(0, &[chunk; 4]),
        Err(SimError::ChunkCountMismatch { chunks: 4, n_dpus: N_DPUS })
    );
    assert_eq!(
        sys.try_push_to_mram(0, &[]),
        Err(SimError::ChunkCountMismatch { chunks: 0, n_dpus: N_DPUS })
    );
    // The failed batches wrote nothing.
    assert_eq!(sys.try_copy_from_mram(0, 0, 8).unwrap(), vec![0u8; 8]);
    // A correctly-sized batch lands per-DPU.
    sys.try_push_to_mram(256, &[&[1; 4], &[2; 4], &[3; 4]]).unwrap();
    for dpu in 0..N_DPUS {
        assert_eq!(sys.try_copy_from_mram(dpu, 256, 4).unwrap(), vec![dpu as u8 + 1; 4]);
    }
}

#[test]
fn try_push_to_symbol_rejects_a_mis_sized_batch() {
    let mut sys = system();
    let mut k = KernelBuilder::new();
    k.global_zeroed("buf", 16);
    k.stop();
    sys.load(&k.build().expect("symbol program builds")).unwrap();

    let chunk: &[u8] = &[9; 4];
    assert_eq!(
        sys.try_push_to_symbol("buf", &[chunk; 1]),
        Err(SimError::ChunkCountMismatch { chunks: 1, n_dpus: N_DPUS })
    );
    // A correctly-sized batch succeeds (the symbol exists on every DPU).
    sys.try_push_to_symbol("buf", &[&[1; 4], &[2; 4], &[3; 4]]).unwrap();
}
