//! Randomized multi-tasklet differential testing: seeded random programs —
//! arithmetic, data-dependent branches, WRAM loads/stores, disjoint DMA,
//! mutex-protected shared updates, and software barriers — must leave
//! WRAM and MRAM byte-identical under the cycle-level simulator and the
//! timing-free `pim-ref` oracle.
//!
//! The generated programs are *schedule-independent by construction*:
//! every tasklet computes in a private WRAM slab (and a private MRAM
//! window), shared state is only updated under a mutex with one fixed
//! commutative-associative operator per program, and barriers separate the
//! phases. Any end-state divergence therefore indicts the pipeline (or the
//! oracle), not the program.
//!
//! On mismatch the failing seed and the full disassembly are printed so
//! the case can be replayed and shrunk by hand.

use pim_asm::{disassemble, Barrier, DpuProgram, KernelBuilder, Mutex};
use pim_dpu::{Dpu, DpuConfig};
use pim_isa::{AluOp, Cond};
use pim_ref::RefInterpreter;
use pim_rng::StdRng;

const SLAB_BYTES: i32 = 256;
const MRAM_WINDOW: i32 = 1024;
const MRAM_BASE: i32 = 4096;

/// Commutative-associative operators safe for cross-tasklet accumulation:
/// the final shared value is a fold independent of update order.
const SHARED_OPS: [AluOp; 4] = [AluOp::Add, AluOp::Xor, AluOp::Min, AluOp::Max];

const PRIVATE_OPS: [AluOp; 10] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Xor,
    AluOp::And,
    AluOp::Or,
    AluOp::Mul,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Min,
    AluOp::Max,
];

/// Generates one random schedule-independent program for `n` tasklets.
#[allow(clippy::too_many_lines)]
fn generate(rng: &mut StdRng, n: u32) -> DpuProgram {
    let mut k = KernelBuilder::new();
    let slab = k.global_zeroed("slab", (SLAB_BYTES * n as i32) as u32);
    let shared = k.global_zeroed("shared", 4);
    let bar = Barrier::alloc(&mut k, n);
    let mutex = Mutex::alloc(&mut k);
    let shared_op = *rng.choose(&SHARED_OPS);
    let [t, p, v, w, i, s0, s1, s2] = k.regs(["t", "p", "v", "w", "i", "s0", "s1", "s2"]);

    // Private slab pointer and a tid-derived working value.
    k.tid(t);
    k.mul(p, t, SLAB_BYTES);
    k.add(p, p, slab as i32);
    k.mul(v, t, rng.gen_range(3i32..999));
    k.add(v, v, rng.gen_range(1i32..1000));

    let phases = rng.gen_range(1usize..4);
    for phase in 0..phases {
        // Phase body: a bounded private loop of random operations.
        let iters = rng.gen_range(1i32..8);
        k.movi(i, iters);
        let top = k.label_here("phase_top");
        for _ in 0..rng.gen_range(1usize..8) {
            match rng.gen_range(0u8..6) {
                // Pure arithmetic on the private value.
                0 => k.alu(*rng.choose(&PRIVATE_OPS), v, v, rng.gen_range(-900i32..900)),
                1 => k.alu(*rng.choose(&PRIVATE_OPS), v, v, i),
                // WRAM word round-trip inside the private slab.
                2 => {
                    let off = 4 * rng.gen_range(0i32..SLAB_BYTES / 4);
                    k.sw(v, p, off);
                    k.lw(w, p, off);
                    k.add(v, v, w);
                }
                // Byte store + sign/zero-extending loads.
                3 => {
                    let off = rng.gen_range(0i32..SLAB_BYTES);
                    k.sb(v, p, off);
                    if rng.gen_range(0u8..2) == 0 {
                        k.lbu(w, p, off);
                    } else {
                        k.lb(w, p, off);
                    }
                    k.alu(AluOp::Xor, v, v, w);
                }
                // Data-dependent forward branch over a side effect.
                4 => {
                    let skip = k.fresh_label("skip");
                    let cond = *rng.choose(&[Cond::Eq, Cond::Ne, Cond::Lt, Cond::Geu]);
                    k.branch(cond, v, rng.gen_range(-5i32..50), &skip);
                    k.alu(*rng.choose(&PRIVATE_OPS), v, v, t);
                    k.place(&skip);
                }
                // Mix the loop counter in through a second register.
                _ => {
                    k.alu(*rng.choose(&PRIVATE_OPS), w, v, rng.gen_range(-900i32..900));
                    k.alu(AluOp::Xor, v, v, w);
                }
            }
        }
        k.sub(i, i, 1);
        k.branch(Cond::Ne, i, 0, &top);
        // Publish the private value into the slab.
        k.sw(v, p, 4 * (phase as i32 % (SLAB_BYTES / 4)));

        // Optional DMA round-trip through a private MRAM window.
        if rng.gen_range(0u8..2) == 0 {
            let len = *rng.choose(&[8i32, 32, 128, 256]);
            k.mul(w, t, MRAM_WINDOW);
            k.add(w, w, MRAM_BASE + phase as i32 * 256);
            k.mov(s0, p);
            k.sdma(s0, w, len);
            k.add(s0, s0, 0);
            k.ldma(s0, w, len);
        }

        // Mutex-protected commutative shared update.
        if rng.gen_range(0u8..3) > 0 {
            mutex.lock(&mut k);
            k.movi(s0, shared as i32);
            k.lw(s1, s0, 0);
            k.alu(shared_op, s1, s1, v);
            k.sw(s1, s0, 0);
            mutex.unlock(&mut k);
        }

        // Barrier between phases (and before stop) when tasklets share.
        if n > 1 {
            bar.wait(&mut k, [s0, s1, s2]);
        }
    }
    k.stop();
    k.build().expect("random program builds")
}

fn assert_equivalent(seed: u64, n: u32, program: &DpuProgram, cfg: DpuConfig, what: &str) {
    let mut oracle = RefInterpreter::new(program, n);
    if let Err(e) = oracle.run(50_000_000) {
        panic!(
            "seed {seed:#x} ({what}, {n} tasklets): oracle fault: {e}\n{}",
            disassemble(program)
        );
    }

    let mut dpu = Dpu::new(cfg);
    dpu.load_program(program).unwrap();
    if let Err(e) = dpu.launch() {
        panic!(
            "seed {seed:#x} ({what}, {n} tasklets): simulator fault: {e}\n{}",
            disassemble(program)
        );
    }

    let wram = dpu.read_wram(0, 64 * 1024);
    let mram = dpu.read_mram(0, 128 * 1024);
    let owram = oracle.read_wram(0, 64 * 1024);
    let omram = oracle.read_mram(0, 128 * 1024);
    for (name, got, want) in [("WRAM", &wram, &owram), ("MRAM", &mram, &omram)] {
        if let Some(at) = got.iter().zip(want.iter()).position(|(g, w)| g != w) {
            panic!(
                "seed {seed:#x} ({what}, {n} tasklets): {name} diverged at {at:#x}: \
                 simulator {:#04x}, oracle {:#04x}\nprogram:\n{}",
                got[at],
                want[at],
                disassemble(program)
            );
        }
    }
}

#[test]
fn random_multi_tasklet_programs_match_the_oracle() {
    // 36 seeds x the tasklet-count cycle >= the 32-case floor, with
    // every count in {1, 2, 4, 8, 16} covered repeatedly.
    let counts = [1u32, 2, 4, 8, 16];
    for seed in 0..36u64 {
        let mut rng = StdRng::seed_from_u64(0xD1FF_0000 ^ seed);
        let n = counts[seed as usize % counts.len()];
        let program = generate(&mut rng, n);
        assert_equivalent(seed, n, &program, DpuConfig::paper_baseline(n), "scalar");
    }
}

#[test]
fn random_programs_match_the_oracle_under_ilp_features() {
    // The Fig 12 ILP features change timing, never function: the same
    // random programs must still match the oracle with everything on.
    use pim_dpu::IlpFeatures;
    let ilp = IlpFeatures {
        data_forwarding: true,
        unified_rf: true,
        superscalar: true,
        double_frequency: true,
    };
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0x11F0_0000 ^ seed);
        let n = [2u32, 8][seed as usize % 2];
        let program = generate(&mut rng, n);
        let cfg = DpuConfig::paper_baseline(n).with_ilp(ilp);
        assert_equivalent(seed, n, &program, cfg, "ilp");
    }
}

#[test]
fn random_programs_match_the_oracle_under_simt() {
    // The SIMT front-end (with coalescing) executes the same unmodified
    // SPMD programs; divergence, reconvergence, and coalesced DMA must
    // also be functionally invisible.
    use pim_dpu::SimtConfig;
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0x51A7_0000 ^ seed);
        let n = [4u32, 16][seed as usize % 2];
        let program = generate(&mut rng, n);
        let cfg = DpuConfig::paper_baseline(n).with_simt(SimtConfig::default());
        assert_equivalent(seed, n, &program, cfg, "simt");
    }
}
