//! Randomized multi-tasklet conformance testing, replayed from the
//! committed corpus in `tests/corpus/`.
//!
//! Program generation lives in `pim-fuzz` (`pim_fuzz::gen`): seeded,
//! structured, schedule-independent SPMD kernels over the full ISA
//! surface. This test replays every committed corpus entry — 52 seed
//! entries preserving the historical seed conventions (36 scalar, 8 ILP,
//! 8 SIMT) plus any minimized repros from past campaigns — through the
//! full four-invariant conformance gauntlet:
//!
//! 1. end-state equality against the timing-free `pim-ref` oracle,
//! 2. naive-vs-fast cycle-loop `DpuRunStats` equality,
//! 3. trace-sink invisibility (NullSink vs RingSink identical stats),
//! 4. tasklet-schedule permutation invariance.
//!
//! To reproduce a failure by hand, see TESTING.md: every entry is either
//! a generator seed (regenerate with `pim_fuzz::gen::generate`) or a
//! self-contained assembly listing replayable with `pimsim fuzz --corpus`.

use std::path::{Path, PathBuf};

use pim_asm::disassemble;
use pim_fuzz::campaign::{run_campaign, CampaignOptions};
use pim_fuzz::corpus::{entry_case, load_dir};
use pim_fuzz::gauntlet::{run_gauntlet, CheckOutcome};
use pim_fuzz::ExecMode;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn every_corpus_entry_passes_the_conformance_gauntlet() {
    let entries = load_dir(&corpus_dir()).expect("committed corpus loads");
    // The historical floor: 36 scalar + 8 ILP + 8 SIMT seed entries.
    assert!(entries.len() >= 52, "corpus shrank to {} entries (floor is 52)", entries.len());

    let mut modes = [0u32; 3];
    let mut counts: Vec<u32> = Vec::new();
    for (name, entry) in &entries {
        let case = entry_case(entry, name).unwrap_or_else(|e| panic!("{name}: {e}"));
        modes[case.mode as usize] += 1;
        counts.push(case.tasklets);
        match run_gauntlet(&case) {
            CheckOutcome::Pass(_) => {}
            CheckOutcome::Fail(f) => panic!(
                "{name} ({}, {} tasklets) violates {}: {}\nprogram:\n{}",
                case.mode.as_str(),
                case.tasklets,
                f.invariant.as_str(),
                f.detail,
                disassemble(&case.program)
            ),
            CheckOutcome::Invalid(why) => panic!(
                "{name} ({}, {} tasklets) is not a valid case: {why}\nprogram:\n{}",
                case.mode.as_str(),
                case.tasklets,
                disassemble(&case.program)
            ),
        }
    }

    // The seed entries must keep exercising every executor and the full
    // tasklet-count spread.
    for mode in ExecMode::ALL {
        assert!(modes[mode as usize] > 0, "no corpus entry exercises {}", mode.as_str());
    }
    for n in [1u32, 2, 4, 8, 16] {
        assert!(counts.contains(&n), "no corpus entry runs with {n} tasklets");
    }
}

#[test]
fn corpus_replay_is_deterministic_across_worker_counts() {
    // Replays (and the campaign report built from them) must be
    // byte-identical whatever `--jobs` says: worker count is a throughput
    // knob, never an input to the results.
    let base =
        CampaignOptions { budget: 8, corpus: Some(corpus_dir()), ..CampaignOptions::smoke(0xC0DE) };
    let serial =
        run_campaign(&CampaignOptions { jobs: Some(1), ..base.clone() }).expect("serial replay");
    let parallel =
        run_campaign(&CampaignOptions { jobs: Some(4), ..base }).expect("parallel replay");
    assert_eq!(serial.replayed, 52);
    assert_eq!(serial.json().render_pretty(), parallel.json().render_pretty());
}
