//! Quickstart: assemble a tiny DPU program, run it on a simulated DPU, and
//! read the paper's headline metrics back.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pimulator::prelude::*;

fn main() {
    // A program in the textual assembly dialect: every tasklet atomically
    // adds its id to a shared WRAM counter.
    let program = assemble(
        r#"
        .data
    counter: .word 0
        .text
    main:
        tid r0              ; r0 = tasklet id
        acquire 0           ; lock the shared counter
        movi r1, counter
        lw   r2, 0(r1)
        add  r2, r2, r0
        sw   r2, 0(r1)
        release 0
        stop
    "#,
    )
    .expect("assembles");

    // A DPU with the paper's Table I configuration, running 16 tasklets.
    let mut dpu = Dpu::new(DpuConfig::paper_baseline(16));
    dpu.load_program(&program).expect("fits");
    let stats = dpu.launch().expect("runs");

    let out = dpu.read_wram_symbol("counter");
    let counter = i32::from_le_bytes(out.try_into().unwrap());
    assert_eq!(counter, (0..16).sum::<i32>());

    println!("counter = {counter} (= 0+1+…+15)");
    println!("cycles            : {}", stats.cycles);
    println!("instructions      : {}", stats.instructions);
    println!("IPC               : {:.3}", stats.ipc());
    let (active, mem, rev, rf) = stats.breakdown();
    println!(
        "breakdown         : active {:.0}%, idle mem {:.0}%, revolver {:.0}%, RF {:.0}%",
        active * 100.0,
        mem * 100.0,
        rev * 100.0,
        rf * 100.0
    );
    println!("wall-clock at 350 MHz: {:.1} µs", stats.time_ns() / 1000.0);
}
