//! The paper's running example (Fig 2) end-to-end: element-wise vector
//! addition partitioned across a set of DPUs, written with the kernel
//! builder and the host API, exactly mirroring the UPMEM flow —
//! `dpu_alloc → dpu_load → dpu_push_xfer → dpu_launch → pull results`.
//!
//! ```sh
//! cargo run --release --example vector_add
//! ```

use pim_asm::KernelBuilder;
use pim_isa::Cond;
use pimulator::prelude::*;

const N: usize = 64 * 1024;
const N_DPUS: u32 = 4;
const N_TASKLETS: u32 = 16;
const BLOCK: u32 = 1024; // staging block, bytes

/// The DPU-side program of paper Fig 2(b): every tasklet stages blocks of
/// A and B through WRAM, adds, and writes C back.
fn build_kernel() -> DpuProgram {
    let mut k = KernelBuilder::new();
    // The host writes per-DPU sizes here, like Fig 2(a)'s `size_per_dpu`.
    let nbytes_addr = k.global_zeroed("nbytes", 4) as i32;
    let buf_a = k.alloc_wram(BLOCK * N_TASKLETS, 8);
    let buf_b = k.alloc_wram(BLOCK * N_TASKLETS, 8);
    let [nbytes, wa, wb, blk] = k.regs(["nbytes", "wa", "wb", "blk"]);
    let [off, m, len, pa, pb, end, va, vb] =
        k.regs(["off", "m", "len", "pa", "pb", "end", "va", "vb"]);
    k.movi(nbytes, nbytes_addr);
    k.lw(nbytes, nbytes, 0);
    k.tid(blk);
    k.mul(wa, blk, BLOCK as i32);
    k.add(wb, wa, buf_b as i32);
    k.add(wa, wa, buf_a as i32);
    let done = k.fresh_label("done");
    let outer = k.label_here("outer");
    k.mul(off, blk, BLOCK as i32);
    k.branch(Cond::Geu, off, nbytes, &done);
    k.sub(len, nbytes, off);
    k.alu(pim_isa::AluOp::Min, len, len, BLOCK as i32);
    // A at MRAM 0, B at `nbytes`, C at `2 * nbytes` (see the host below).
    k.mov(m, off);
    k.ldma(wa, m, len);
    k.add(m, off, nbytes);
    k.ldma(wb, m, len);
    k.mov(pa, wa);
    k.mov(pb, wb);
    k.add(end, wa, len);
    let inner = k.label_here("inner");
    k.lw(va, pa, 0);
    k.lw(vb, pb, 0);
    k.add(va, va, vb);
    k.sw(va, pa, 0);
    k.add(pa, pa, 4);
    k.add(pb, pb, 4);
    k.branch(Cond::Ltu, pa, end, &inner);
    k.add(m, off, nbytes);
    k.add(m, m, nbytes);
    k.sdma(wa, m, len);
    k.add(blk, blk, N_TASKLETS as i32);
    k.jump(&outer);
    k.place(&done);
    k.stop();
    k.build().expect("kernel builds")
}

fn main() {
    let a: Vec<i32> = (0..N as i32).collect();
    let b: Vec<i32> = (0..N as i32).map(|x| 10 * x).collect();

    // dpu_alloc + dpu_load
    let mut sys =
        PimSystem::new(N_DPUS, DpuConfig::paper_baseline(N_TASKLETS), TransferConfig::paper());
    sys.load(&build_kernel()).expect("loads");

    // Partition and push inputs (dpu_push_xfer TO_DPU).
    let per = N / N_DPUS as usize;
    let nbytes = (per * 4) as u32;
    let to_bytes = |w: &[i32]| w.iter().flat_map(|v| v.to_le_bytes()).collect::<Vec<u8>>();
    let chunks_a: Vec<Vec<u8>> =
        (0..N_DPUS as usize).map(|d| to_bytes(&a[d * per..(d + 1) * per])).collect();
    let chunks_b: Vec<Vec<u8>> =
        (0..N_DPUS as usize).map(|d| to_bytes(&b[d * per..(d + 1) * per])).collect();
    sys.push_to_mram(0, &chunks_a.iter().map(Vec::as_slice).collect::<Vec<_>>());
    sys.push_to_mram(nbytes, &chunks_b.iter().map(Vec::as_slice).collect::<Vec<_>>());
    sys.broadcast_to_symbol("nbytes", &nbytes.to_le_bytes());

    // dpu_launch (synchronous)
    let report = sys.launch_all().expect("kernel runs");

    // Pull C back (dpu_push_xfer FROM_DPU) and check.
    let pulled = sys.pull_from_mram(2 * nbytes, nbytes);
    for (d, bytes) in pulled.iter().enumerate() {
        for (i, c) in bytes.chunks_exact(4).enumerate() {
            let got = i32::from_le_bytes(c.try_into().unwrap());
            let idx = d * per + i;
            assert_eq!(got, a[idx] + b[idx], "element {idx}");
        }
    }
    println!("C = A + B verified for {N} elements across {N_DPUS} DPUs");

    let t = sys.timeline();
    println!("CPU→DPU transfer : {:>9.1} µs", t.to_dpu_ns / 1e3);
    println!("kernel           : {:>9.1} µs (slowest DPU)", t.kernel_ns / 1e3);
    println!("CPU←DPU transfer : {:>9.1} µs", t.from_dpu_ns / 1e3);
    let s = report.slowest();
    println!(
        "slowest DPU: {} instructions, IPC {:.2}, MRAM read util {:.0}%",
        s.instructions,
        s.ipc(),
        s.mram_read_utilization() * 100.0
    );
}
