//! A miniature of the paper's §IV characterization: run a handful of PrIM
//! workloads on the simulated DPU and print the metrics behind Figures
//! 5, 6, and 9 — utilization, stall breakdown, and instruction mix.
//!
//! ```sh
//! cargo run --release --example characterize
//! ```

use pim_isa::InstrClass;
use pimulator::prelude::*;
use pimulator::report::{pct, Table};

fn main() {
    let names = ["VA", "GEMV", "BS", "SpMV", "HST-L", "TS"];
    let mut table = Table::new(&[
        "workload",
        "IPC",
        "mem util",
        "active",
        "idle(mem)",
        "idle(rev)",
        "dma%",
        "sync%",
    ]);
    for name in names {
        let w = workload_by_name(name).expect("known workload");
        let run = w
            .run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(16)))
            .expect("runs");
        run.validation.as_ref().expect("validates");
        let s = run.merged();
        let (active, mem, rev, _) = s.breakdown();
        table.row_owned(vec![
            name.to_string(),
            format!("{:.2}", s.ipc()),
            pct(s.mram_read_utilization()),
            pct(active),
            pct(mem),
            pct(rev),
            pct(s.class_fraction(InstrClass::Dma)),
            pct(s.class_fraction(InstrClass::Sync)),
        ]);
    }
    println!("PrIM characterization @16 tasklets (tiny datasets):\n");
    print!("{}", table.render());
    println!("\nThe paper's story in one table: BS/SpMV sit idle on memory,");
    println!("HST-L burns instructions on locks, TS/GEMV saturate the pipeline.");
}
