//! The paper's four §V case studies, each in a few lines: the simulator's
//! whole point is that these are *configuration changes*, not new
//! simulators.
//!
//! ```sh
//! cargo run --release --example case_studies
//! ```

use pim_dpu::{IlpFeatures, SimtConfig};
use pimulator::prelude::*;

fn time_of(name: &str, cfg: DpuConfig) -> f64 {
    let w = workload_by_name(name).expect("known workload");
    let run = w.run(DatasetSize::Tiny, &RunConfig::single(cfg)).expect("runs");
    run.validation.as_ref().expect("validates");
    run.merged().time_ns()
}

fn main() {
    let base = DpuConfig::paper_baseline(16);

    // §V-A: SIMT vector processing on GEMV.
    let t0 = time_of("GEMV", base.clone());
    let t1 = time_of(
        "GEMV",
        base.clone().with_simt(SimtConfig { coalescing: true, ..SimtConfig::default() }),
    );
    println!("§V-A  SIMT+AC on GEMV          : {:.2}x speedup", t0 / t1);

    // §V-B: the ILP feature ladder on a compute-bound workload.
    let t0 = time_of("TS", base.clone());
    let t1 = time_of("TS", base.clone().with_ilp(IlpFeatures::all()));
    println!("§V-B  Base+DRSF on TS          : {:.2}x speedup", t0 / t1);

    // §V-C: an MMU in front of every MRAM access.
    let t0 = time_of("VA", base.clone());
    let t1 = time_of("VA", base.clone().with_paper_mmu());
    println!("§V-C  MMU on VA                : {:.1}% overhead", (t1 / t0 - 1.0) * 100.0);

    // §V-D: on-demand caches instead of the scratchpad.
    let t0 = time_of("BS", base.clone());
    let t1 = time_of("BS", base.with_paper_caches());
    println!("§V-D  caches vs scratchpad, BS : {:.2}x speedup", t0 / t1);
}
