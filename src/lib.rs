//! Repository-level crate hosting the workspace examples and integration
//! tests. The actual library surface lives in the [`pimulator`] facade crate.
pub use pimulator;
